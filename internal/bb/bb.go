// Package bb models a burst-buffer tier: host-side flash nodes sitting
// between the checkpointing application and the striped parallel file
// system. The PDSI report's checkpoint story assumes bursts hit the
// striped FS directly; the burst-buffer literature it seeded (iFast /
// ParaLog host-side logging, Wang et al.'s burst-buffer system) inserts
// an absorption tier instead: each buffer node logs its ranks'
// checkpoint writes append-only into a flash device at device speed,
// acknowledges them, and drains the data to the parallel FS
// asynchronously — hiding checkpoint latency from compute as long as
// the drain finishes before the next burst arrives.
//
// The tier reuses internal/flash's FTL (page mapping, pre-erased pool,
// inline GC cost) as the absorption medium, driven on sim time: every
// absorbed write programs real log pages, so a burst that outruns GC
// pays the same foreground collection cost Figure 14 measures. The
// knobs map to the sizing question the papers pose:
//
//   - Flash.UserPages × Flash.PageSize is the per-node capacity — how
//     many checkpoint rounds the buffer can hold before backpressure.
//   - DrainBandwidth is the paced node→FS drain rate — together with
//     capacity it decides whether the drain wins the race against the
//     next checkpoint round (capacity × drain-rate sizing).
//   - Mode selects write-back (absorb, ack, drain later — fast but
//     dirty data dies with the node) or write-through (absorb and
//     forward synchronously — slower, nothing to lose).
//
// Failure semantics integrate with the rest of the stack: a
// sim.FaultPlan crash of a buffer node ("bb0", "bb1", ... — see
// NodeTarget) loses whatever is dirty in write-back mode (counted, and
// gone), fails in-flight absorptions back to the application for its
// retry loop, and tears any drain caught on the wire — the partially
// landed extent is marked corrupt via the pfs integrity layer, so
// checksums catch it on read exactly like any other torn write.
//
// Determinism follows the repo contract: the tier lives on the same
// engine (or cluster shard) as the file system, keeps all queues as
// FIFO slices, iterates no maps, and registers bb.* instruments only on
// instrumented engines — a run without a tier is byte-identical to one
// built before this package existed.
package bb

import (
	"errors"
	"fmt"

	"repro/internal/flash"
	"repro/internal/sim"
)

// Mode selects what an absorbed write means for durability.
type Mode int

const (
	// WriteBack acknowledges a write once it is logged in flash; the
	// drain to the parallel FS happens asynchronously. Fastest, but
	// undrained ("dirty") data is lost if the buffer node crashes.
	WriteBack Mode = iota

	// WriteThrough logs the write and forwards it to the parallel FS
	// synchronously; the write acknowledges only when both copies
	// exist. A node crash loses nothing, but the checkpoint sees the
	// full FS latency — the buffer only smooths queueing, it cannot
	// hide the transfer.
	WriteThrough
)

func (m Mode) String() string {
	switch m {
	case WriteBack:
		return "write-back"
	case WriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrNodeDown is returned by WriteOp completions when the operation's
// buffer node crashed before acknowledging.
var ErrNodeDown = errors.New("bb: burst-buffer node down")

// NodeTarget names buffer node i for sim.FaultPlan targeting ("bb0",
// "bb1", ...). Foreign targets (the FS's "oss3") are ignored by the
// tier, so one plan can drive both layers through a sim.FanoutSink.
func NodeTarget(i int) string { return fmt.Sprintf("bb%d", i) }

// Config sizes a burst-buffer tier.
type Config struct {
	// Nodes is the number of buffer nodes; ranks map to nodes
	// round-robin (rank mod Nodes).
	Nodes int

	// Mode is the durability mode, WriteBack by default.
	Mode Mode

	// Flash is the per-node log device. Its UserPages × PageSize is the
	// node's buffer capacity; its program/read/GC timings set the
	// absorption speed (see internal/flash's Table 1 presets).
	Flash flash.Spec

	// IngestBandwidth is the rank→node link speed in bytes/sec
	// (default 1.25e9, a 10 GbE-class private link — buffer nodes sit
	// on the compute fabric, closer than the FS).
	IngestBandwidth float64

	// DrainBandwidth paces each node's asynchronous drain to the
	// parallel FS in bytes/sec (default 100e6). Lower values lose the
	// race against the next checkpoint round sooner.
	DrainBandwidth float64

	// MaxDrainRetries bounds retries of a drain write that failed
	// (e.g. against a crashed OSS) before its bytes are dropped and
	// counted; default 4. DrainRetryBackoff is the first retry delay,
	// doubling per attempt (default 10 ms, capped at 8×).
	MaxDrainRetries   int
	DrainRetryBackoff sim.Time

	// FailTimeout is how long a client waits before an operation
	// against a down node errors with ErrNodeDown (default 25 ms,
	// matching the FS's RPC timeout).
	FailTimeout sim.Time

	// MetricPrefix namespaces the tier's bb.* instruments, exactly like
	// pfs.Config.MetricPrefix ("pod00." etc.). Empty for single-tier
	// runs.
	MetricPrefix string
}

// DefaultConfig returns a write-back tier of n nodes backed by the
// FusionIO-class PCIe preset — the device Table 1 shows absorbing
// sequential bursts near host-link speed — draining at 100 MB/s.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:          n,
		Mode:           WriteBack,
		Flash:          flash.FusionIODuo(),
		DrainBandwidth: 100e6,
	}
}

// CapacityBytes returns the per-node buffer capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.Flash.UserPages) * c.Flash.PageSize
}

// Validate reports problems with the config.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("bb: Nodes %d < 1", c.Nodes)
	case c.Mode != WriteBack && c.Mode != WriteThrough:
		return fmt.Errorf("bb: unknown mode %d", int(c.Mode))
	case c.Flash.PageSize <= 0 || c.Flash.UserPages <= 0 || c.Flash.PagesPerBlock <= 0:
		return fmt.Errorf("bb: invalid flash spec (page size %d, user pages %d)", c.Flash.PageSize, c.Flash.UserPages)
	case c.IngestBandwidth < 0 || c.DrainBandwidth < 0:
		return fmt.Errorf("bb: negative bandwidth")
	case c.MaxDrainRetries < 0:
		return fmt.Errorf("bb: MaxDrainRetries %d < 0", c.MaxDrainRetries)
	case c.DrainRetryBackoff < 0 || c.FailTimeout < 0:
		return fmt.Errorf("bb: negative time in config")
	}
	return nil
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.IngestBandwidth == 0 {
		c.IngestBandwidth = 1.25e9
	}
	if c.DrainBandwidth == 0 {
		c.DrainBandwidth = 100e6
	}
	if c.MaxDrainRetries == 0 {
		c.MaxDrainRetries = 4
	}
	if c.DrainRetryBackoff == 0 {
		c.DrainRetryBackoff = sim.Time(10e-3)
	}
	if c.FailTimeout == 0 {
		c.FailTimeout = sim.Time(25e-3)
	}
	return c
}

// Stats aggregates the tier's activity over a run. Byte counts are
// application bytes (the model carries no payload, so absorbed ==
// logical write sizes).
type Stats struct {
	// AbsorbedOps/AbsorbedBytes count writes logged into flash.
	AbsorbedOps   int64
	AbsorbedBytes int64

	// ForwardedBytes counts synchronous write-through copies pushed to
	// the FS; PassthroughBytes counts writes too large for the buffer,
	// bypassed to the FS without logging.
	ForwardedBytes   int64
	PassthroughBytes int64

	// DrainedOps/DrainedBytes count asynchronous write-back drains
	// completed cleanly; DrainRetries counts drain attempts repeated
	// after an FS error and DroppedDrainBytes the bytes abandoned when
	// retries ran out.
	DrainedOps        int64
	DrainedBytes      int64
	DrainRetries      int64
	DroppedDrainBytes int64

	// TornDrains counts drains interrupted mid-wire by the node's
	// crash; their landing extents are marked corrupt in the FS.
	TornDrains int64

	// Stalls counts writes that waited for buffer capacity
	// (backpressure); StallTime is their total wait.
	Stalls    int64
	StallTime sim.Time

	// LostBytes counts dirty write-back data destroyed by node crashes
	// (queued or read back for drain but never on the wire).
	LostBytes int64

	// Crashes/Recoveries count node fault transitions applied;
	// FailedOps counts writes errored against a down node.
	Crashes    int64
	Recoveries int64
	FailedOps  int64

	// PeakOccupancy is the maximum fraction of aggregate buffer
	// capacity ever held by unfinished data; MaxDrainLag the longest
	// absorb→drained latency of any record.
	PeakOccupancy float64
	MaxDrainLag   sim.Time
}
