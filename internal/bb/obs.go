package bb

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Instrumentation for the burst-buffer tier. Everything here follows
// the repo's zero-cost contract: on an uninstrumented engine no handle
// is created and every probe call is a nil-safe no-op; runs without a
// tier register nothing at all. Per-node instruments (the flash FTL's
// counters, the ingest/drain queues) are namespaced bb.nodeNN.* in the
// style of pfs.ossNN.*; sim-time series join the engine's shared
// sampling cadence only when the registry has series enabled.

// metric prepends the configured pod prefix to an instrument name.
func (t *Tier) metric(name string) string { return t.cfg.MetricPrefix + name }

// instrument registers the tier's probes in the engine's metrics
// registry. A no-op (leaving all handles nil) when the engine is
// uninstrumented.
func (t *Tier) instrument() {
	reg := t.eng.Metrics()
	if reg == nil {
		return
	}
	t.cAbsorbOps = reg.Counter(t.metric("bb.absorb.ops"))
	t.cAbsorbBytes = reg.Counter(t.metric("bb.absorb.bytes"))
	t.cForward = reg.Counter(t.metric("bb.forward.bytes"))
	t.cPassthrough = reg.Counter(t.metric("bb.passthrough.bytes"))
	t.cDrainOps = reg.Counter(t.metric("bb.drain.ops"))
	t.cDrainBytes = reg.Counter(t.metric("bb.drain.bytes"))
	t.cDrainRetry = reg.Counter(t.metric("bb.drain.retries"))
	t.cDrainDrop = reg.Counter(t.metric("bb.drain.dropped_bytes"))
	t.cTorn = reg.Counter(t.metric("bb.drain.torn"))
	t.cStalls = reg.Counter(t.metric("bb.stall.ops"))
	t.cLost = reg.Counter(t.metric("bb.faults.lost_bytes"))
	t.cCrashes = reg.Counter(t.metric("bb.faults.crashes"))
	t.cRecoveries = reg.Counter(t.metric("bb.faults.recoveries"))
	t.cFailedOps = reg.Counter(t.metric("bb.faults.failed_ops"))
	t.hStallWait = reg.Histogram(t.metric("bb.stall.wait_s"), obs.TimeBuckets())
	t.hDrainLag = reg.Histogram(t.metric("bb.drain.lag_s"), obs.TimeBuckets())
	t.gPeakOcc = reg.Gauge(t.metric("bb.occupancy.peak_frac"))
	t.gMaxLag = reg.Gauge(t.metric("bb.drain.max_lag_s"))
	capacity := float64(t.cfg.CapacityBytes()) * float64(len(t.nodes))
	reg.GaugeFunc(t.metric("bb.capacity.bytes"), func() float64 { return capacity })
	for i, n := range t.nodes {
		name := t.metric(fmt.Sprintf("bb.node%02d", i))
		n.dev.Instrument(reg, name+".flash")
		n.nic.Instrument(name + ".nic")
		n.drainq.Instrument(name + ".drain")
	}
	if w := reg.SeriesWindow(); w > 0 {
		t.armSeries(reg, w)
	}
}

// armSeries registers the tier's sim-time series on the engine's shared
// sampling grid: aggregate occupancy (the saturation curve the sizing
// experiment sweeps) and the drain scheduler's remaining debt.
func (t *Tier) armSeries(reg *obs.Registry, window float64) {
	tsOcc := reg.TimeSeries(t.metric("bb.occupancy.frac"))
	tsBacklog := reg.TimeSeries(t.metric("bb.drain.backlog_bytes"))
	t.eng.Sample(sim.Time(window), func(now sim.Time) {
		ts := float64(now)
		tsOcc.Observe(ts, t.Occupancy())
		tsBacklog.Observe(ts, float64(t.backlogBytes))
	})
}
