package bb

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// drainClientBase offsets the tier's internal pfs client ids so they
// never collide with application ranks (which use their MPI rank).
const drainClientBase = 1 << 20

// Tier is a running burst-buffer tier bound to a file system's engine.
// All state mutates inside the single-threaded simulation, so no
// locking anywhere.
type Tier struct {
	cfg      Config
	eng      *sim.Engine
	fs       *pfs.FS
	nodes    []*node
	capPages int // per-node admission budget, in flash pages

	stats Stats

	// Aggregate occupancy across nodes, maintained incrementally so
	// peak tracking and series sampling are O(1).
	pendingPages int64 // admitted, not yet released (absorb in flight + dirty)
	backlogBytes int64 // dirty bytes queued or in flight to the FS

	// Instrument handles; nil (no-op) on uninstrumented engines.
	cAbsorbOps   *obs.Counter
	cAbsorbBytes *obs.Counter
	cForward     *obs.Counter
	cPassthrough *obs.Counter
	cDrainOps    *obs.Counter
	cDrainBytes  *obs.Counter
	cDrainRetry  *obs.Counter
	cDrainDrop   *obs.Counter
	cTorn        *obs.Counter
	cStalls      *obs.Counter
	cLost        *obs.Counter
	cCrashes     *obs.Counter
	cRecoveries  *obs.Counter
	cFailedOps   *obs.Counter
	hStallWait   *obs.Histogram
	hDrainLag    *obs.Histogram
	gPeakOcc     *obs.Gauge
	gMaxLag      *obs.Gauge
}

// node is one buffer host: an ingest link, a flash log device, and a
// drain lane to the parallel FS.
type node struct {
	idx    int
	nic    *sim.Server   // rank→node ingest link
	dev    *flash.Device // append-only log medium
	flashq *sim.Server   // serializes flash program service
	drainq *sim.Server   // paces drain readback + transfer
	client *pfs.Client   // the node's own FS identity (drains, forwards)

	cursor  int // next log page (lpn), wraps over UserPages
	pending int // admitted pages not yet released — the occupancy bound

	dirty    []*record // FIFO of undrained write-back records
	waiters  []waiter  // FIFO of writes stalled on capacity
	draining bool      // one drain in flight per node

	// Fault state, same shape as a pfs server: the epoch lets work in
	// flight discover at its next completion that the node died under
	// it.
	down  bool
	epoch int
}

// record is one absorbed write awaiting (or undergoing) drain.
type record struct {
	f         *pfs.File
	off, size int64
	pages     int
	enq       sim.Time // absorb completion — drain lag measures from here
}

// waiter is a write stalled on buffer capacity.
type waiter struct {
	pages int
	since sim.Time
	ot    *obs.OpTimer
	fn    func()
}

// NewTier builds a tier of cfg.Nodes buffer nodes on the file system's
// engine. The config is validated (panic on error, like pfs.New) and
// instruments register only when the engine is instrumented.
func NewTier(fs *pfs.FS, cfg Config) *Tier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	eng := fs.Engine()
	t := &Tier{cfg: cfg, eng: eng, fs: fs, capPages: cfg.Flash.UserPages}
	for i := 0; i < cfg.Nodes; i++ {
		t.nodes = append(t.nodes, &node{
			idx:    i,
			nic:    sim.NewServer(eng, 1),
			dev:    flash.NewDevice(cfg.Flash),
			flashq: sim.NewServer(eng, 1),
			drainq: sim.NewServer(eng, 1),
			client: fs.NewClient(drainClientBase + i),
		})
	}
	t.instrument()
	return t
}

// Config returns the tier's effective (defaulted) configuration.
func (t *Tier) Config() Config { return t.cfg }

// Stats returns a copy of the tier's accounting so far.
func (t *Tier) Stats() Stats { return t.stats }

// Backlog reports the dirty bytes currently queued or in flight to the
// FS across all nodes — the drain scheduler's remaining debt.
func (t *Tier) Backlog() int64 { return t.backlogBytes }

// Occupancy reports the fraction of aggregate buffer capacity currently
// held by unfinished data.
func (t *Tier) Occupancy() float64 {
	return float64(t.pendingPages) / float64(t.capPages*len(t.nodes))
}

// NodeFor reports which buffer node serves the given rank.
func (t *Tier) NodeFor(rank int) int { return rank % len(t.nodes) }

// pagesFor rounds a byte count up to whole flash pages.
func (t *Tier) pagesFor(size int64) int {
	ps := t.cfg.Flash.PageSize
	return int((size + ps - 1) / ps)
}

// WriteOp routes one rank's checkpoint write through the buffer tier:
// ingest link → flash log append (write-back acks here; write-through
// also forwards to the FS first). The stage timer accrues the buffer
// hop (obs.StageNet ingest, obs.StageFlash program, obs.StageQueue
// waits including backpressure stalls); done receives ErrNodeDown when
// the node crashed before acknowledging, or the FS's error in
// write-through/passthrough. Writes larger than a node's whole buffer
// bypass to the FS unlogged (counted as passthrough).
func (t *Tier) WriteOp(rank int, f *pfs.File, off, size int64, ot *obs.OpTimer, done func(error)) {
	n := t.nodes[rank%len(t.nodes)]
	pages := t.pagesFor(size)
	if pages > t.capPages {
		t.stats.PassthroughBytes += size
		t.cPassthrough.Add(size)
		n.client.WriteOp(f, off, size, ot, done)
		return
	}
	t.admit(n, pages, ot, func() {
		t.absorb(n, f, off, size, pages, ot, done)
	})
}

// admit runs fn once the node has pages of free capacity, stalling the
// write FIFO behind earlier waiters otherwise. The page-granular bound
// (pending ≤ UserPages) is also what keeps the wrapping log cursor off
// undrained pages: at most UserPages of the log can be pending, so a
// page is only reprogrammed after its previous content was released.
func (t *Tier) admit(n *node, pages int, ot *obs.OpTimer, fn func()) {
	if n.pending+pages <= t.capPages && len(n.waiters) == 0 {
		t.reserve(n, pages)
		fn()
		return
	}
	t.stats.Stalls++
	t.cStalls.Inc()
	n.waiters = append(n.waiters, waiter{pages: pages, since: t.eng.Now(), ot: ot, fn: fn})
}

// reserve/release maintain the occupancy accounting on both the node
// and the aggregate, tracking the peak.
func (t *Tier) reserve(n *node, pages int) {
	n.pending += pages
	t.pendingPages += int64(pages)
	if occ := t.Occupancy(); occ > t.stats.PeakOccupancy {
		t.stats.PeakOccupancy = occ
		t.gPeakOcc.Set(occ)
	}
}

func (t *Tier) release(n *node, pages int) {
	n.pending -= pages
	t.pendingPages -= int64(pages)
	t.admitWaiters(n)
}

// admitWaiters drains the stall FIFO in order while capacity lasts.
func (t *Tier) admitWaiters(n *node) {
	now := t.eng.Now()
	for len(n.waiters) > 0 {
		w := n.waiters[0]
		if n.pending+w.pages > t.capPages {
			return
		}
		n.waiters = n.waiters[1:]
		wait := now - w.since
		t.stats.StallTime += wait
		t.hStallWait.Observe(float64(wait))
		w.ot.Add(obs.StageQueue, float64(wait))
		t.reserve(n, w.pages)
		w.fn()
	}
}

// program appends the write's pages to the node's log, advancing the
// wrapping cursor, and returns the service time: the FTL's per-page
// program latency (inline GC included) divided across the device's
// channels, as a striped sequential append is.
func (t *Tier) program(n *node, pages int) sim.Time {
	var lat sim.Time
	for i := 0; i < pages; i++ {
		lat += n.dev.WritePage(n.cursor)
		n.cursor++
		if n.cursor == t.cfg.Flash.UserPages {
			n.cursor = 0
		}
	}
	return sim.Time(float64(lat) / float64(n.dev.Spec.Channels))
}

// absorb is the buffered write path past admission.
func (t *Tier) absorb(n *node, f *pfs.File, off, size int64, pages int, ot *obs.OpTimer, done func(error)) {
	epoch := n.epoch
	xfer := sim.Time(float64(size) / t.cfg.IngestBandwidth)
	enq := t.eng.Now()
	n.nic.Submit(xfer, func(at sim.Time) {
		ot.Add(obs.StageQueue, float64(at-enq-xfer))
		ot.Add(obs.StageNet, float64(xfer))
		if n.down || n.epoch != epoch {
			t.failNode(n, pages, done)
			return
		}
		svc := t.program(n, pages)
		fenq := t.eng.Now()
		n.flashq.Submit(svc, func(fat sim.Time) {
			ot.Add(obs.StageQueue, float64(fat-fenq-svc))
			ot.Add(obs.StageFlash, float64(svc))
			if n.down || n.epoch != epoch {
				t.failNode(n, pages, done)
				return
			}
			t.stats.AbsorbedOps++
			t.stats.AbsorbedBytes += size
			t.cAbsorbOps.Inc()
			t.cAbsorbBytes.Add(size)
			if t.cfg.Mode == WriteThrough {
				t.stats.ForwardedBytes += size
				t.cForward.Add(size)
				n.client.WriteOp(f, off, size, ot, func(err error) {
					t.release(n, pages)
					done(err)
				})
				return
			}
			rec := &record{f: f, off: off, size: size, pages: pages, enq: t.eng.Now()}
			n.dirty = append(n.dirty, rec)
			t.backlogBytes += size
			t.kickDrain(n)
			done(nil)
		})
	})
}

// failNode errors one write against a dead node after the client
// timeout, releasing its reservation (the bytes never stuck).
func (t *Tier) failNode(n *node, pages int, done func(error)) {
	t.stats.FailedOps++
	t.cFailedOps.Inc()
	t.release(n, pages)
	t.eng.Schedule(t.cfg.FailTimeout, func() { done(ErrNodeDown) })
}

// kickDrain starts the node's next drain if none is running: read the
// record back from flash (TRead per page across channels) and stream it
// to the FS at the configured drain pace, then issue the FS write.
func (t *Tier) kickDrain(n *node) {
	if n.draining || n.down || len(n.dirty) == 0 {
		return
	}
	n.draining = true
	rec := n.dirty[0]
	n.dirty = n.dirty[1:]
	epoch := n.epoch
	readback := sim.Time(float64(rec.pages) * float64(t.cfg.Flash.TRead) / float64(n.dev.Spec.Channels))
	pace := sim.Time(float64(rec.size) / t.cfg.DrainBandwidth)
	n.drainq.Submit(readback+pace, func(sim.Time) {
		if n.epoch != epoch {
			// The node died during readback: nothing reached the wire,
			// the record is gone with the rest of the dirty data.
			t.loseRecord(n, rec)
			return
		}
		t.issueDrain(n, rec, epoch, 0, t.cfg.DrainRetryBackoff)
	})
}

// issueDrain writes one record into the FS, retrying FS-side failures
// with capped exponential backoff. A node crash while the write is on
// the wire tears the drain: if the write landed anyway, its extent is
// marked corrupt for checksums to catch; either way the data no longer
// counts as cleanly drained.
func (t *Tier) issueDrain(n *node, rec *record, epoch, attempt int, backoff sim.Time) {
	maxBackoff := 8 * t.cfg.DrainRetryBackoff
	var try func()
	try = func() {
		n.client.WriteOp(rec.f, rec.off, rec.size, nil, func(err error) {
			if n.epoch != epoch {
				t.stats.TornDrains++
				t.cTorn.Inc()
				if err == nil {
					t.fs.CorruptExtent(rec.f.Name(), rec.off, rec.size)
				}
				t.backlogBytes -= rec.size
				t.release(n, rec.pages)
				return
			}
			if err != nil {
				if attempt < t.cfg.MaxDrainRetries {
					attempt++
					t.stats.DrainRetries++
					t.cDrainRetry.Inc()
					d := backoff
					if backoff *= 2; backoff > maxBackoff {
						backoff = maxBackoff
					}
					t.eng.Schedule(d, try)
					return
				}
				// The FS would not take it back: the drain is abandoned
				// (counted, never silently lost) so the buffer frees up
				// and the run completes through permanent FS failures.
				t.stats.DroppedDrainBytes += rec.size
				t.cDrainDrop.Add(rec.size)
				t.finishDrain(n, rec)
				return
			}
			t.stats.DrainedOps++
			t.stats.DrainedBytes += rec.size
			t.cDrainOps.Inc()
			t.cDrainBytes.Add(rec.size)
			lag := t.eng.Now() - rec.enq
			t.hDrainLag.Observe(float64(lag))
			if lag > t.stats.MaxDrainLag {
				t.stats.MaxDrainLag = lag
				t.gMaxLag.Set(float64(lag))
			}
			t.finishDrain(n, rec)
		})
	}
	try()
}

// finishDrain releases a completed (or abandoned) record and moves to
// the next one.
func (t *Tier) finishDrain(n *node, rec *record) {
	t.backlogBytes -= rec.size
	t.release(n, rec.pages)
	n.draining = false
	t.kickDrain(n)
}

// loseRecord accounts a record destroyed by its node's crash before it
// reached the wire.
func (t *Tier) loseRecord(n *node, rec *record) {
	t.stats.LostBytes += rec.size
	t.cLost.Add(rec.size)
	t.backlogBytes -= rec.size
	t.release(n, rec.pages)
}

// nodeByTarget resolves a NodeTarget name, or nil for foreign targets.
func (t *Tier) nodeByTarget(target string) *node {
	var i int
	if n, err := fmt.Sscanf(target, "bb%d", &i); err != nil || n != 1 {
		return nil
	}
	if i < 0 || i >= len(t.nodes) {
		return nil
	}
	return t.nodes[i]
}

// CrashTarget implements sim.FaultSink: the named buffer node dies. In
// write-back mode every queued dirty record is lost on the spot; work
// in flight (absorptions, the current drain) discovers the crash by
// epoch comparison at its next completion, so the event queue is never
// rummaged through. Foreign targets ("oss2") are ignored.
func (t *Tier) CrashTarget(target string) {
	n := t.nodeByTarget(target)
	if n == nil || n.down {
		return
	}
	n.down = true
	n.epoch++
	t.stats.Crashes++
	t.cCrashes.Inc()
	for _, rec := range n.dirty {
		t.stats.LostBytes += rec.size
		t.cLost.Add(rec.size)
		t.backlogBytes -= rec.size
		n.pending -= rec.pages
		t.pendingPages -= int64(rec.pages)
	}
	n.dirty = n.dirty[:0]
	n.draining = false
	// The freed capacity admits stalled writes; they will fail against
	// the down node and feed the application's retry loop.
	t.admitWaiters(n)
}

// RecoverTarget implements sim.FaultSink: the named node returns to
// service empty — its log's dirty window was already accounted lost at
// crash time. The device itself survives (wear and pool state carry
// over, as a rebooted host's flash does).
func (t *Tier) RecoverTarget(target string) {
	n := t.nodeByTarget(target)
	if n == nil || !n.down {
		return
	}
	n.down = false
	t.stats.Recoveries++
	t.cRecoveries.Inc()
	t.kickDrain(n)
}
