package bb

import (
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// benchRound runs one full absorb-and-drain checkpoint round per
// iteration: 8 ranks × 1 MiB into a fresh tier, engine drained to
// empty. It measures the event-loop cost of the buffered write path,
// not sim-time.
func benchRound(b *testing.B, cfg Config) {
	const ranks, size = 8, int64(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := pfs.New(eng, pfs.PanFSLike(4))
		tier := NewTier(fs, cfg)
		files := make([]*pfs.File, ranks)
		for r := 0; r < ranks; r++ {
			r := r
			fs.NewClient(r).Create(fileName(r), func(f *pfs.File) { files[r] = f })
		}
		eng.Run()
		for r := 0; r < ranks; r++ {
			tier.WriteOp(r, files[r], 0, size, nil, func(err error) {
				if err != nil {
					b.Fatal(err)
				}
			})
		}
		eng.Run()
		if tier.Backlog() != 0 {
			b.Fatal("round did not drain")
		}
	}
}

func BenchmarkBBWriteBackRound(b *testing.B) {
	cfg := DefaultConfig(2)
	benchRound(b, cfg)
}

func BenchmarkBBWriteThroughRound(b *testing.B) {
	cfg := DefaultConfig(2)
	cfg.Mode = WriteThrough
	benchRound(b, cfg)
}

// BenchmarkBBSaturatedRound exercises the backpressure path: the buffer
// holds a quarter of the round, so most writes stall and re-admit.
func BenchmarkBBSaturatedRound(b *testing.B) {
	cfg := DefaultConfig(2)
	cfg.Flash.UserPages = 512 // 2 MiB per node vs 8 MiB per round
	cfg.DrainBandwidth = 400e6
	benchRound(b, cfg)
}
