package bb

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/flash"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// rig is one engine + striped FS + buffer tier with one file per rank,
// pre-created so tests schedule pure data traffic.
type rig struct {
	eng   *sim.Engine
	fs    *pfs.FS
	tier  *Tier
	files []*pfs.File
}

func newRig(t *testing.T, cfg Config, ranks int, reg *obs.Registry) *rig {
	t.Helper()
	eng := sim.NewEngine()
	eng.Instrument(reg, nil)
	fs := pfs.New(eng, pfs.PanFSLike(4))
	r := &rig{eng: eng, fs: fs, tier: NewTier(fs, cfg), files: make([]*pfs.File, ranks)}
	for i := 0; i < ranks; i++ {
		i := i
		fs.NewClient(i).Create(fileName(i), func(f *pfs.File) { r.files[i] = f })
	}
	eng.Run()
	return r
}

func fileName(rank int) string {
	return "ckpt/rank" + string(rune('0'+rank))
}

// writeRound issues one size-byte write per rank at the engine's current
// time and calls done(elapsed) when every ack has arrived.
func (r *rig) writeRound(t *testing.T, size int64, wantErr bool, done func(elapsed sim.Time)) {
	t.Helper()
	start := r.eng.Now()
	left := len(r.files)
	for i, f := range r.files {
		r.tier.WriteOp(i, f, 0, size, nil, func(err error) {
			if !wantErr && err != nil {
				t.Errorf("rank write failed: %v", err)
			}
			if left--; left == 0 {
				done(r.eng.Now() - start)
			}
		})
	}
}

// directRoundTime measures the same round written straight to a fresh
// FS, for the latency-hiding comparison.
func directRoundTime(t *testing.T, ranks int, size int64) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	fs := pfs.New(eng, pfs.PanFSLike(4))
	files := make([]*pfs.File, ranks)
	clients := make([]*pfs.Client, ranks)
	for i := 0; i < ranks; i++ {
		i := i
		clients[i] = fs.NewClient(i)
		clients[i].Create(fileName(i), func(f *pfs.File) { files[i] = f })
	}
	eng.Run()
	var elapsed sim.Time
	start := eng.Now()
	left := ranks
	for i := range files {
		clients[i].WriteOp(files[i], 0, size, nil, func(err error) {
			if err != nil {
				t.Errorf("direct write failed: %v", err)
			}
			if left--; left == 0 {
				elapsed = eng.Now() - start
			}
		})
	}
	eng.Run()
	return elapsed
}

func testConfig() Config {
	return Config{
		Nodes:          1,
		Mode:           WriteBack,
		Flash:          flash.FusionIODuo(),
		DrainBandwidth: 100e6,
	}
}

// TestWriteBackHidesCheckpointLatency is the tier's reason to exist:
// the buffered ack must land well before the direct FS write would,
// and the drain must still deliver every byte to the FS afterwards.
func TestWriteBackHidesCheckpointLatency(t *testing.T) {
	const ranks, size = 4, int64(1 << 20)
	direct := directRoundTime(t, ranks, size)

	cfg := testConfig()
	cfg.Nodes = 2 // two ranks per node, the usual fan-in
	r := newRig(t, cfg, ranks, nil)
	var buffered sim.Time
	r.writeRound(t, size, false, func(elapsed sim.Time) { buffered = elapsed })
	r.eng.Run()

	if buffered <= 0 || direct <= 0 {
		t.Fatalf("rounds did not complete: buffered=%v direct=%v", buffered, direct)
	}
	if buffered >= direct/2 {
		t.Fatalf("write-back ack %v not measurably below direct %v", buffered, direct)
	}
	st := r.tier.Stats()
	if st.AbsorbedBytes != int64(ranks)*size {
		t.Fatalf("absorbed %d bytes, want %d", st.AbsorbedBytes, int64(ranks)*size)
	}
	if st.DrainedBytes != st.AbsorbedBytes {
		t.Fatalf("drained %d of %d absorbed bytes", st.DrainedBytes, st.AbsorbedBytes)
	}
	if r.tier.Backlog() != 0 || r.tier.Occupancy() != 0 {
		t.Fatalf("tier not empty after drain: backlog=%d occ=%v", r.tier.Backlog(), r.tier.Occupancy())
	}
	if got := r.fs.BytesWritten(); got != st.AbsorbedBytes {
		t.Fatalf("fs received %d bytes, want %d", got, st.AbsorbedBytes)
	}
}

// TestWriteThroughForwardsSynchronously: the ack waits for the FS copy,
// so nothing is ever dirty and no drain runs.
func TestWriteThroughForwardsSynchronously(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = WriteThrough
	const ranks, size = 2, int64(1 << 20)
	r := newRig(t, cfg, ranks, nil)
	var buffered sim.Time
	r.writeRound(t, size, false, func(elapsed sim.Time) { buffered = elapsed })
	r.eng.Run()
	st := r.tier.Stats()
	if st.ForwardedBytes != int64(ranks)*size {
		t.Fatalf("forwarded %d bytes, want %d", st.ForwardedBytes, int64(ranks)*size)
	}
	if st.DrainedOps != 0 || r.tier.Backlog() != 0 {
		t.Fatalf("write-through ran the drain: %+v", st)
	}
	if got := r.fs.BytesWritten(); got != st.ForwardedBytes {
		t.Fatalf("fs received %d bytes, want %d", got, st.ForwardedBytes)
	}
	direct := directRoundTime(t, ranks, size)
	if buffered < direct {
		t.Fatalf("write-through ack %v beat the direct path %v — it must wait for the FS", buffered, direct)
	}
}

// TestDrainRacesCheckpointRound: with a compute gap longer than the
// drain debt the next round finds an empty buffer; with a slow drain
// and a small device the rounds pile up until backpressure stalls the
// writers — the saturation knee of the sizing experiment.
func TestDrainRacesCheckpointRound(t *testing.T) {
	const ranks, size = 2, int64(256 << 10)

	// Fast drain, roomy buffer: round 2 must start clean and stall-free.
	r := newRig(t, testConfig(), ranks, nil)
	rounds := 0
	var nextRound func()
	nextRound = func() {
		r.writeRound(t, size, false, func(sim.Time) {
			rounds++
			if rounds == 2 {
				return
			}
			// A generous compute phase: drain debt is ~5 ms at 100 MB/s.
			r.eng.Schedule(sim.Time(0.5), func() {
				if got := r.tier.Backlog(); got != 0 {
					t.Errorf("drain lost the race it should win: backlog %d at next round", got)
				}
				nextRound()
			})
		})
	}
	nextRound()
	r.eng.Run()
	if st := r.tier.Stats(); st.Stalls != 0 {
		t.Fatalf("roomy buffer stalled %d writes", st.Stalls)
	}

	// Slow drain, small buffer (512 KiB = exactly one round): the
	// back-to-back burst must hit backpressure.
	cfg := testConfig()
	cfg.Flash.UserPages = 128
	cfg.DrainBandwidth = 2e6
	r2 := newRig(t, cfg, ranks, nil)
	burst := 0
	var burstRound func()
	burstRound = func() {
		r2.writeRound(t, size, false, func(sim.Time) {
			if burst++; burst < 4 {
				burstRound()
			}
		})
	}
	burstRound()
	r2.eng.Run()
	st := r2.tier.Stats()
	if st.Stalls == 0 || st.StallTime <= 0 {
		t.Fatalf("saturating burst never stalled: %+v", st)
	}
	if st.PeakOccupancy < 0.9 {
		t.Fatalf("peak occupancy %v, want ~1 under saturation", st.PeakOccupancy)
	}
	if st.DrainedBytes != st.AbsorbedBytes {
		t.Fatalf("drained %d of %d absorbed bytes", st.DrainedBytes, st.AbsorbedBytes)
	}
}

// TestWriteBackCrashLosesDirtyData: acknowledged but undrained bytes
// die with the node — the durability gap write-back trades for speed.
func TestWriteBackCrashLosesDirtyData(t *testing.T) {
	cfg := testConfig()
	cfg.DrainBandwidth = 1e6 // ~0.26 s per 256 KiB record: plenty dirty at crash
	const ranks, size = 4, int64(256 << 10)
	r := newRig(t, cfg, ranks, nil)
	plan := sim.NewFaultPlan().Add(NodeTarget(0), r.eng.Now()+0.05, 0)
	if err := plan.Schedule(r.eng, r.tier); err != nil {
		t.Fatal(err)
	}
	acked := 0
	r.writeRound(t, size, false, func(sim.Time) { acked = 1 })
	r.eng.Run()
	st := r.tier.Stats()
	if acked != 1 {
		t.Fatal("round never fully acked before the crash")
	}
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if st.LostBytes == 0 {
		t.Fatalf("crash lost no dirty data: %+v", st)
	}
	if st.LostBytes+st.DrainedBytes+st.DroppedDrainBytes != st.AbsorbedBytes {
		t.Fatalf("byte accounting leaks: lost %d + drained %d + dropped %d != absorbed %d",
			st.LostBytes, st.DrainedBytes, st.DroppedDrainBytes, st.AbsorbedBytes)
	}
	if got := r.fs.BytesWritten(); got >= st.AbsorbedBytes {
		t.Fatalf("fs received %d bytes despite %d lost", got, st.LostBytes)
	}
	if r.tier.Occupancy() != 0 {
		t.Fatalf("occupancy %v after crash cleared the buffer", r.tier.Occupancy())
	}
}

// TestWriteThroughCrashLosesNothing: the same crash under write-through
// has no dirty data to destroy; every acknowledged byte is in the FS.
func TestWriteThroughCrashLosesNothing(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = WriteThrough
	cfg.FailTimeout = sim.Time(5e-3)
	const ranks, size = 4, int64(256 << 10)
	r := newRig(t, cfg, ranks, nil)
	// Crash mid-ingest: the serialized node link moves one 256 KiB write
	// every ~0.21 ms, so at +0.5 ms the later ranks are still queued.
	plan := sim.NewFaultPlan().Add(NodeTarget(0), r.eng.Now()+0.0005, 0)
	if err := plan.Schedule(r.eng, r.tier); err != nil {
		t.Fatal(err)
	}
	var okBytes int64
	left := ranks
	for i, f := range r.files {
		i := i
		r.tier.WriteOp(i, f, 0, size, nil, func(err error) {
			if err == nil {
				okBytes += size
			} else if !errors.Is(err, ErrNodeDown) {
				t.Errorf("unexpected error: %v", err)
			}
			left--
		})
	}
	r.eng.Run()
	st := r.tier.Stats()
	if left != 0 {
		t.Fatalf("%d writes never completed", left)
	}
	if st.LostBytes != 0 {
		t.Fatalf("write-through lost %d bytes", st.LostBytes)
	}
	if got := r.fs.BytesWritten(); got < okBytes {
		t.Fatalf("fs received %d bytes < %d acknowledged", got, okBytes)
	}
	if st.FailedOps == 0 {
		t.Fatalf("mid-ingest crash failed no in-flight writes: %+v", st)
	}
}

// TestTornDrainMarksCorruption: a node crash while its drain is on the
// FS wire leaves a partially-streamed extent; the tier must mark it
// corrupt so pfs checksums catch the lie on read.
func TestTornDrainMarksCorruption(t *testing.T) {
	cfg := testConfig()
	cfg.DrainBandwidth = 2e6 // 1 MiB record: ~0.52 s readback+pace, then the FS write
	const size = int64(1 << 20)
	r := newRig(t, cfg, 1, nil)
	// The drainq service for the single record ends at ~0.527 s; the FS
	// write then needs ~10 ms of wire time. Crash inside that window.
	plan := sim.NewFaultPlan().Add(NodeTarget(0), r.eng.Now()+0.53, 0)
	if err := plan.Schedule(r.eng, r.tier); err != nil {
		t.Fatal(err)
	}
	r.writeRound(t, size, false, func(sim.Time) {})
	r.eng.Run()
	st := r.tier.Stats()
	if st.TornDrains == 0 {
		t.Fatalf("crash mid-drain tore nothing: %+v", st)
	}
	ints := r.fs.IntegrityStats()
	if ints.Injected == 0 {
		t.Fatalf("torn drain injected no corruption: %+v", ints)
	}
	if got := r.fs.UnrepairedCorruption(); got == 0 {
		t.Fatal("torn extent not live as latent corruption")
	}
	if r.tier.Occupancy() != 0 || r.tier.Backlog() != 0 {
		t.Fatalf("torn drain leaked occupancy: occ=%v backlog=%d", r.tier.Occupancy(), r.tier.Backlog())
	}
}

// TestOversizedWriteBypasses: a write larger than the whole node buffer
// goes straight to the FS, counted as passthrough, never logged.
func TestOversizedWriteBypasses(t *testing.T) {
	cfg := testConfig()
	cfg.Flash.UserPages = 16 // 64 KiB node buffer
	r := newRig(t, cfg, 1, nil)
	size := int64(1 << 20)
	doneAt := sim.Time(-1)
	r.tier.WriteOp(0, r.files[0], 0, size, nil, func(err error) {
		if err != nil {
			t.Errorf("passthrough write failed: %v", err)
		}
		doneAt = r.eng.Now()
	})
	r.eng.Run()
	st := r.tier.Stats()
	if doneAt < 0 {
		t.Fatal("passthrough write never completed")
	}
	if st.PassthroughBytes != size || st.AbsorbedBytes != 0 {
		t.Fatalf("passthrough accounting wrong: %+v", st)
	}
	if got := r.fs.BytesWritten(); got != size {
		t.Fatalf("fs received %d bytes, want %d", got, size)
	}
}

// TestForeignAndBogusTargetsIgnored: the tier must coexist with OSS
// targets on one plan and shrug off out-of-range node names.
func TestForeignAndBogusTargetsIgnored(t *testing.T) {
	r := newRig(t, testConfig(), 1, nil)
	r.tier.CrashTarget("oss0")
	r.tier.CrashTarget("bb99")
	r.tier.CrashTarget("mds")
	r.tier.RecoverTarget("bb99")
	if st := r.tier.Stats(); st.Crashes != 0 || st.Recoveries != 0 {
		t.Fatalf("foreign targets counted: %+v", st)
	}
}

// TestConfigValidate covers the rejection paths.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1, Mode: Mode(7), Flash: flash.FusionIODuo()},
		{Nodes: 1, Flash: flash.Spec{}},
		func() Config { c := testConfig(); c.IngestBandwidth = -1; return c }(),
		func() Config { c := testConfig(); c.MaxDrainRetries = -1; return c }(),
		func() Config { c := testConfig(); c.DrainRetryBackoff = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestSameSeedTierRunsAreByteIdentical pins the tier's own determinism:
// two identically-configured instrumented runs serialize the same
// snapshot, including under faults and backpressure.
func TestSameSeedTierRunsAreByteIdentical(t *testing.T) {
	run := func() []byte {
		cfg := testConfig()
		cfg.Flash.UserPages = 64
		cfg.DrainBandwidth = 5e6
		reg := obs.NewRegistry()
		r := newRig(t, cfg, 4, reg)
		plan := sim.NewFaultPlan().Add(NodeTarget(0), r.eng.Now()+0.05, 0.1)
		if err := plan.Schedule(r.eng, r.tier); err != nil {
			t.Fatal(err)
		}
		rounds := 0
		var next func()
		next = func() {
			r.writeRound(t, 256<<10, true, func(sim.Time) {
				if rounds++; rounds < 3 {
					r.eng.Schedule(sim.Time(0.02), next)
				}
			})
		}
		next()
		r.eng.Run()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed tier snapshots differ:\n%s\nvs\n%s", a, b)
	}
}
