package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// This file is the fault-injection half of the kernel: a FaultPlan is a
// deterministic schedule of crash/recovery events for named targets
// ("oss3", "mds", "link0" — the kernel does not interpret names), built
// either from fixed times or drawn from the failure distributions in
// internal/failure. Scheduling a plan on an engine turns the closed-form
// failure models into events that actually interrupt a running
// simulation: servers die mid-checkpoint, recover after a downtime, and
// the model under test (see internal/pfs) decides what that means.
//
// Determinism: a plan is plain data ordered by (time, insertion order),
// so the same plan scheduled on the same engine produces the same
// trajectory bit for bit — the property the golden same-seed tests in
// internal/workload assert across the whole stack.

// FaultEvent is one scheduled crash of a named target. A zero Downtime
// means the target never recovers within the run (a permanent failure);
// otherwise recovery fires at At+Downtime.
type FaultEvent struct {
	Target   string
	At       Time
	Downtime Time
}

// Permanent reports whether the event has no scheduled recovery.
func (e FaultEvent) Permanent() bool { return e.Downtime <= 0 }

// FaultSink receives crash/recovery callbacks from a scheduled plan.
// Implementations should still tolerate redundant events defensively, but
// Schedule validates the plan on arm: per-target schedules must be sorted
// and non-overlapping (see Validate), so a sink never observes a crash of
// an already-down target from a plan that armed successfully.
type FaultSink interface {
	CrashTarget(target string)
	RecoverTarget(target string)
}

// FanoutSink broadcasts every crash/recovery callback to each sink in
// order. It exists so one plan can drive several subsystems (the striped
// FS and the burst-buffer tier) while being scheduled exactly once —
// scheduling the same plan twice would double the sim.faults.* counters
// and duplicate the trace instants. Sinks ignore foreign targets by
// contract, so the fan-out needs no routing. Nil entries are skipped.
type FanoutSink []FaultSink

// CrashTarget implements FaultSink.
func (f FanoutSink) CrashTarget(target string) {
	for _, s := range f {
		if s != nil {
			s.CrashTarget(target)
		}
	}
}

// RecoverTarget implements FaultSink.
func (f FanoutSink) RecoverTarget(target string) {
	for _, s := range f {
		if s != nil {
			s.RecoverTarget(target)
		}
	}
}

// FaultPlan is an ordered set of fault events. The zero value and the nil
// plan are both valid, empty plans; scheduling them is a no-op, so the
// fault layer costs nothing when disabled.
type FaultPlan struct {
	events []FaultEvent
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Add appends a crash of target at time at, recovering after downtime
// (zero = never). Negative times panic: a plan is authored before the
// run, so a negative timestamp is a model bug, not a schedule.
func (p *FaultPlan) Add(target string, at, downtime Time) *FaultPlan {
	if at < 0 || downtime < 0 {
		panic(fmt.Sprintf("sim: negative fault time for %s: at=%v downtime=%v", target, at, downtime))
	}
	p.events = append(p.events, FaultEvent{Target: target, At: at, Downtime: downtime})
	return p
}

// Len reports the number of scheduled crashes (0 on a nil plan).
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.events)
}

// Events returns the plan's events sorted by time (ties keep insertion
// order), as a copy safe to retain.
func (p *FaultPlan) Events() []FaultEvent {
	if p == nil {
		return nil
	}
	out := append([]FaultEvent(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ErrInvalidPlan is the sentinel every plan-validation failure wraps;
// match it with errors.Is.
var ErrInvalidPlan = errors.New("sim: invalid fault plan")

// PlanError reports the first per-target schedule violation found by
// Validate: the offending pair of events (in insertion order) and why
// they cannot both arm. It unwraps to ErrInvalidPlan.
type PlanError struct {
	Target     string
	Prev, Next FaultEvent
	Reason     string // "unsorted" or "overlapping"
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("%v: target %q %s events: crash at %v (downtime %v) then crash at %v",
		ErrInvalidPlan, e.Target, e.Reason, e.Prev.At, e.Prev.Downtime, e.Next.At)
}

// Unwrap makes errors.Is(err, ErrInvalidPlan) hold.
func (e *PlanError) Unwrap() error { return ErrInvalidPlan }

// Validate checks every target's schedule in insertion order: event times
// must be nondecreasing ("unsorted" otherwise), and each crash must fire
// at or after the previous outage's recovery ("overlapping" otherwise — a
// second crash landing inside an outage would re-arm the recovery timer
// and silently cut the first outage short). A permanent failure admits no
// later events for its target. Nil and empty plans are valid.
func (p *FaultPlan) Validate() error {
	if p.Len() == 0 {
		return nil
	}
	last := make(map[string]FaultEvent, 8)
	for _, ev := range p.events {
		prev, seen := last[ev.Target]
		if seen {
			switch {
			case ev.At < prev.At:
				return &PlanError{Target: ev.Target, Prev: prev, Next: ev, Reason: "unsorted"}
			case prev.Permanent() || ev.At < prev.At+prev.Downtime:
				return &PlanError{Target: ev.Target, Prev: prev, Next: ev, Reason: "overlapping"}
			}
		}
		last[ev.Target] = ev
	}
	return nil
}

// Schedule arms every event on the engine against sink. Crashes and
// recoveries are ordinary events, so they interleave deterministically
// with the model's own traffic. Instrumented engines count injections
// and recoveries ("sim.faults.injected", "sim.faults.recovered") and
// mark each transition in the trace. A nil or empty plan schedules
// nothing. The plan is validated on arm: an unsorted or overlapping
// per-target schedule returns a *PlanError (wrapping ErrInvalidPlan)
// and arms nothing.
func (p *FaultPlan) Schedule(eng *Engine, sink FaultSink) error {
	if p.Len() == 0 || sink == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	reg := eng.Metrics()
	return p.schedule(eng, sink, reg, eng.Tracer(), 0)
}

// ScheduleSharded arms the plan across a cluster: place maps each
// target to its home shard and sinks[i] — one per shard — receives the
// callbacks for targets placed on shard i. Targets must not straddle
// shards (each target's whole crash/recovery history lands on one
// engine), and same-time faults of different targets must commute in
// the model, which is the cluster's usual disjoint-state contract.
// Trace instants go to a per-target lane (tid = the target's rank in
// sorted-name order) instead of the single-engine tid 0, so with the
// cluster's ordered tracer the trace is byte-identical for any shard
// count. The fault counters are shared atomics and also invariant.
func (p *FaultPlan) ScheduleSharded(cl *Cluster, place func(target string) int, sinks []FaultSink) error {
	if p.Len() == 0 {
		return nil
	}
	if len(sinks) != cl.NumShards() {
		return fmt.Errorf("%w: %d sinks for %d shards", ErrInvalidPlan, len(sinks), cl.NumShards())
	}
	if err := p.Validate(); err != nil {
		return err
	}

	// Per-target trace lanes in sorted-name order: stable under any
	// placement.
	targets := make([]string, 0, 8)
	seen := make(map[string]bool, 8)
	for _, ev := range p.events {
		if !seen[ev.Target] {
			seen[ev.Target] = true
			targets = append(targets, ev.Target)
		}
	}
	sort.Strings(targets)
	lane := make(map[string]int64, len(targets))
	for i, t := range targets {
		lane[t] = int64(i)
	}

	reg := cl.Metrics()
	tr := cl.Tracer()
	for _, t := range targets {
		shard := place(t)
		if shard < 0 || shard >= cl.NumShards() {
			return fmt.Errorf("%w: target %q placed on shard %d of %d", ErrInvalidPlan, t, shard, cl.NumShards())
		}
		if sinks[shard] == nil {
			return fmt.Errorf("%w: target %q placed on shard %d with nil sink", ErrInvalidPlan, t, shard)
		}
	}
	for _, t := range targets {
		shard := place(t)
		sub := p.subplan(t)
		if err := sub.schedule(cl.Shard(shard), sinks[shard], reg, tr, lane[t]); err != nil {
			return err
		}
	}
	return nil
}

// subplan extracts one target's events, preserving insertion order.
func (p *FaultPlan) subplan(target string) *FaultPlan {
	sub := NewFaultPlan()
	for _, ev := range p.events {
		if ev.Target == target {
			sub.events = append(sub.events, ev)
		}
	}
	return sub
}

// schedule arms an already-validated plan on one engine.
func (p *FaultPlan) schedule(eng *Engine, sink FaultSink, reg *obs.Registry, tr *obs.Tracer, tid int64) error {
	cInjected := reg.Counter("sim.faults.injected")
	cRecovered := reg.Counter("sim.faults.recovered")
	for _, ev := range p.Events() {
		ev := ev
		eng.At(ev.At, func() {
			cInjected.Inc()
			if tr.Enabled() {
				tr.InstantArgs("fault", "crash "+ev.Target, tid, float64(eng.Now()),
					map[string]any{"downtime_s": float64(ev.Downtime)})
			}
			sink.CrashTarget(ev.Target)
		})
		if ev.Permanent() {
			continue
		}
		eng.At(ev.At+ev.Downtime, func() {
			cRecovered.Inc()
			if tr.Enabled() {
				tr.Instant("fault", "recover "+ev.Target, tid, float64(eng.Now()))
			}
			sink.RecoverTarget(ev.Target)
		})
	}
	return nil
}
