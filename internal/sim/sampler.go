package sim

// Periodic sampling: the bridge between the event engine and the obs
// sim-time series layer. A single engine-wide sampler tick fires every
// interval of simulated time and runs every registered sample function
// in registration order — one tick, many observers, so arming several
// subsystems (engine depth, per-OSS utilization, in-flight ops) costs
// one extra event per window, not one per series.
//
// The sampler is self-terminating: after running its functions, a tick
// that finds no other live events stops rescheduling itself, so an
// armed engine still drains and Run() still returns. Sampling is only
// armed when a registry has series enabled, which keeps default runs'
// event trajectories untouched.

// Sample registers fn to run every interval of simulated time, at the
// engine's current sampling cadence. The first call fixes the cadence
// and schedules the tick; later calls join the existing cadence (their
// interval argument is ignored) so all series share one time grid.
// No-op for a nil fn or, on the first call, a non-positive interval.
func (e *Engine) Sample(interval Time, fn func(now Time)) {
	if fn == nil {
		return
	}
	if e.samplerOn {
		e.sampleFns = append(e.sampleFns, fn)
		return
	}
	if interval <= 0 {
		return
	}
	e.sampleFns = append(e.sampleFns, fn)
	e.sampleEvery = interval
	e.samplerOn = true
	var tick func()
	tick = func() {
		for _, f := range e.sampleFns {
			f(e.now)
		}
		// Stop once the model has drained: the tick itself must not keep
		// the engine alive forever.
		if e.live == 0 {
			return
		}
		e.Schedule(e.sampleEvery, tick)
	}
	e.Schedule(e.sampleEvery, tick)
}

// SampleInterval returns the armed sampling cadence (0 when sampling is
// off).
func (e *Engine) SampleInterval() Time {
	if !e.samplerOn {
		return 0
	}
	return e.sampleEvery
}
