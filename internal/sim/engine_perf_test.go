package sim

import (
	"testing"
)

// TestCancelCompactionBoundsQueue is the regression test for the lazy-
// deletion leak: cancel-heavy workloads (incast retransmission timers)
// used to leave every corpse in the heap until the clock reached it, so
// the queue grew without bound. With compaction the heap never holds
// more than about twice the live events (plus the small compaction
// floor).
func TestCancelCompactionBoundsQueue(t *testing.T) {
	e := NewEngine()
	const n = 20000
	ids := make([]EventID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, e.Schedule(Time(1+i%97), func() {}))
	}
	// Cancel all but every 200th event.
	live := 0
	for i, id := range ids {
		if i%200 == 0 {
			live++
			continue
		}
		e.Cancel(id)
	}
	if got := e.Pending(); got != live {
		t.Fatalf("Pending() = %d, want %d", got, live)
	}
	if max := 2*live + compactMinDead + 1; e.QueueLen() > max {
		t.Fatalf("QueueLen() = %d after mass cancel, want <= %d (leak regression)", e.QueueLen(), max)
	}
	// Compaction must not reorder the survivors.
	var order []Time
	e2 := NewEngine()
	survivors := 0
	for i := 0; i < 2000; i++ {
		at := Time(1 + (i*37)%4999)
		id := e2.At(at, func() { order = append(order, at) })
		if i%40 != 0 {
			e2.Cancel(id)
		} else {
			survivors++
		}
	}
	e2.Run()
	if len(order) != survivors {
		t.Fatalf("dispatched %d survivors, want %d", len(order), survivors)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("out-of-order dispatch after compaction at %d: %v then %v", i, order[i-1], order[i])
		}
	}
}

// TestCancelAfterRecycleIsInert: an EventID whose event struct has been
// recycled into a new scheduling must not cancel the new occupant (the
// free-list ABA hazard the generation counter exists for).
func TestCancelAfterRecycleIsInert(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, func() {})
	e.Run() // dispatches and recycles the struct
	fired := false
	e.Schedule(1, func() { fired = true }) // reuses the freed struct
	e.Cancel(id)                           // stale ID, must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale EventID cancelled a recycled event")
	}
}

// TestEngineScheduleSteadyStateAllocs pins the free-list contract: once
// warm, scheduling and dispatching allocates nothing.
func TestEngineScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	warm := func() {
		for i := 0; i < 512; i++ {
			e.Schedule(Time(i%13)*1e-4, fn)
		}
		e.Run()
	}
	warm()
	if avg := testing.AllocsPerRun(20, warm); avg != 0 {
		t.Fatalf("steady-state schedule+run allocates %.1f times per cycle, want 0", avg)
	}
}

// BenchmarkEngineSchedule measures the hot path: schedule a batch of
// out-of-order events and drain them. Compare with
// BenchmarkBoxedEngineSchedule (the pre-rewrite container/heap engine
// preserved in engine_reference_test.go).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 128; k++ {
			e.Schedule(Time(k%17)*1e-4, fn)
		}
		e.Run()
	}
}

// BenchmarkEngineCancelHeavy models retransmission-timer churn: every
// scheduled timer is cancelled before it can fire, while a sparse
// stream of real events keeps the clock moving. The old engine never
// reclaimed the corpses.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ids := make([]EventID, 0, 256)
		for k := 0; k < 256; k++ {
			ids = append(ids, e.Schedule(1e3+Time(k), fn)) // far-future timers
		}
		for _, id := range ids {
			e.Cancel(id)
		}
		e.Schedule(1e-5, fn)
		e.RunUntil(e.Now() + 1e-4)
	}
}
