package sim

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// clusterFixture runs a multi-domain model on a cluster with the given
// shard count and returns the serialized snapshot, series CSV, and
// trace. The model is deliberately chatty across domains: eight domains,
// each with its own FIFO server, periodic local work, per-domain
// instruments (prefixed names and a private trace lane), and a token
// ring circulating through Cluster.Send with a stable per-domain key.
// Everything observable must come out byte-identical for any shard
// count and any GOMAXPROCS.
func clusterFixture(t *testing.T, shards int) (snap, csv, trace []byte) {
	t.Helper()
	const (
		domains   = 8
		rounds    = 20
		lookahead = Time(0.002)
	)
	reg := obs.NewRegistry()
	reg.EnableTimeSeries(0.01)
	tr := obs.NewTracer()
	cl := NewCluster(shards, lookahead)
	cl.Instrument(reg, tr)

	type domain struct {
		shard  int
		eng    *Engine
		srv    *Server
		cDone  *obs.Counter
		cToken *obs.Counter
		hSvc   *obs.Histogram
	}
	doms := make([]*domain, domains)
	for d := 0; d < domains; d++ {
		shard := d % shards
		eng := cl.Shard(shard)
		name := fmt.Sprintf("test.dom%02d", d)
		doms[d] = &domain{
			shard:  shard,
			eng:    eng,
			srv:    NewServer(eng, 1),
			cDone:  reg.Counter(name + ".done"),
			cToken: reg.Counter(name + ".tokens"),
			hSvc:   reg.Histogram(name+".latency_s", obs.TimeBuckets()),
		}
	}

	for d := 0; d < domains; d++ {
		d := d
		dom := doms[d]
		for k := 0; k < rounds; k++ {
			k := k
			at := Time(d)*0.0005 + Time(k)*0.01
			dom.eng.At(at, func() {
				start := dom.eng.Now()
				dom.srv.Submit(0.003, func(done Time) {
					dom.cDone.Inc()
					dom.hSvc.Observe(float64(done - start))
					tr.Span("dom", fmt.Sprintf("job%02d", k), int64(d), float64(start), float64(done), nil)
				})
			})
		}
	}

	// Token ring: on receipt, domain d forwards to d+1 from its own
	// shard, keyed by the sending domain so merge order is
	// placement-independent. Each domain injects one starting token.
	onToken := make([]func(round int), domains)
	for d := 0; d < domains; d++ {
		d := d
		dom := doms[d]
		nd := (d + 1) % domains
		key := fmt.Sprintf("dom%02d", d)
		onToken[d] = func(round int) {
			dom.cToken.Inc()
			if round >= rounds {
				return
			}
			cl.Send(dom.shard, doms[nd].shard, key, lookahead+Time(round%3)*0.001, func() {
				onToken[nd](round + 1)
			})
		}
		dom.eng.At(Time(d)*0.0007, func() { onToken[d](0) })
	}

	cl.Run()

	var sb, cb, tb bytes.Buffer
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSeriesCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), cb.Bytes(), tb.Bytes()
}

// TestClusterByteIdenticalAcrossShardsAndProcs is the tentpole golden
// property: snapshots, series, and traces from shard counts 1, 2, and 8
// are byte-identical, at GOMAXPROCS 1 and 4 both.
func TestClusterByteIdenticalAcrossShardsAndProcs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var wantSnap, wantCSV, wantTrace []byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 8} {
			snap, csv, trace := clusterFixture(t, shards)
			if wantSnap == nil {
				wantSnap, wantCSV, wantTrace = snap, csv, trace
				if len(wantSnap) == 0 || len(wantCSV) == 0 || len(wantTrace) == 0 {
					t.Fatal("fixture produced empty output")
				}
				continue
			}
			if !bytes.Equal(snap, wantSnap) {
				t.Errorf("procs=%d shards=%d: snapshot differs from baseline", procs, shards)
			}
			if !bytes.Equal(csv, wantCSV) {
				t.Errorf("procs=%d shards=%d: series CSV differs from baseline", procs, shards)
			}
			if !bytes.Equal(trace, wantTrace) {
				t.Errorf("procs=%d shards=%d: trace differs from baseline", procs, shards)
			}
		}
	}
}

// TestClusterSingleShardMatchesEngine: a model that never sends runs
// identically on a plain engine and on shard 0 of a cluster.
func TestClusterSingleShardMatchesEngine(t *testing.T) {
	build := func(eng *Engine) *[]Time {
		srv := NewServer(eng, 2)
		var out []Time
		p := &out
		for i := 0; i < 30; i++ {
			eng.At(Time(i%7)*0.01, func() {
				srv.Submit(0.004, func(done Time) { *p = append(*p, done) })
			})
		}
		return p
	}
	plain := NewEngine()
	wantP := build(plain)
	plainEnd := plain.Run()

	cl := NewCluster(4, Infinity)
	gotP := build(cl.Shard(0))
	clEnd := cl.Run()

	if plainEnd != clEnd {
		t.Fatalf("end time: engine %v, cluster %v", plainEnd, clEnd)
	}
	want, got := *wantP, *gotP
	if len(want) != len(got) {
		t.Fatalf("completions: engine %d, cluster %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("completion %d: engine %v, cluster %v", i, want[i], got[i])
		}
	}
}

func TestClusterSendBelowLookaheadPanics(t *testing.T) {
	cl := NewCluster(2, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	cl.Send(0, 1, "k", 0.005, func() {})
}

func TestClusterSendMergeOrderIsKeyed(t *testing.T) {
	// Two senders on different shards deliver to shard 0 at the same
	// instant; the keyed merge must order "a" before "b" no matter
	// which worker staged first.
	for trial := 0; trial < 10; trial++ {
		cl := NewCluster(3, 0.001)
		var got []string
		for i, key := range []string{"b", "a"} {
			src := i + 1
			key := key
			cl.Shard(src).At(0.005, func() {
				cl.Send(src, 0, key, 0.001, func() { got = append(got, key) })
			})
		}
		cl.Run()
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("trial %d: same-time sends delivered as %v, want [a b]", trial, got)
		}
	}
}

func TestClusterSampleGridAndFinalTick(t *testing.T) {
	cl := NewCluster(2, Infinity)
	var ticks []Time
	cl.Sample(0.01, func(now Time) { ticks = append(ticks, now) })
	fired := 0
	cl.Shard(1).At(0.025, func() { fired++ })
	cl.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times", fired)
	}
	// Ticks at 0.01 and 0.02 precede the event at 0.025; one final tick
	// at 0.03 fires after the model drains.
	want := []Time{0.01, 0.02, 0.03}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestClusterRunWithNoEvents(t *testing.T) {
	cl := NewCluster(2, Infinity)
	if end := cl.Run(); end != 0 {
		t.Fatalf("empty cluster ended at %v", end)
	}
}
