//lint:allowfile goroutine -- sanctioned site: the shard runner pool executes one engine per OS thread between conservative-lookahead barriers

package sim

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Cluster runs several Engines — shards — as one simulation under
// conservative (Chandy–Misra-style) synchronization: no rollback, no
// speculation. Each shard owns a disjoint piece of the model (whole
// domains: a file system pod and its clients, a fault injector's
// targets); shards interact only through Send, which declares a minimum
// cross-shard latency. The coordinator advances the simulation in
// bounded windows: with T the global minimum next-event time and L the
// cluster lookahead, every shard may safely dispatch its events in
// [T, T+L) in parallel, because anything another shard sends during the
// window arrives at or after T+L. Between windows the coordinator merges
// staged sends in a shard-count-invariant order and runs sampler ticks,
// so the observable trajectory — snapshots, traces, series, reports —
// is byte-identical for any shard count and any GOMAXPROCS.
//
// Determinism contract, in exchange for which the Cluster promises
// byte-identical output across shard counts and scheduling:
//
//   - Shard state is disjoint: model code on shard i must not read or
//     write shard j's model state except through Send.
//   - Same-timestamp events on different shards must commute through
//     any shared instruments: counters are atomic and commutative, but
//     order-sensitive instruments (histograms, quantiles, time series,
//     trace lanes) must be observed from a single shard each — give
//     each domain its own metric-name prefix and trace lane.
//   - Send keys are stable entity names owned by a single sender, so
//     the per-key sequence numbers that break merge ties do not depend
//     on where the sender is placed.
type Cluster struct {
	shards    []*Engine
	lookahead Time

	now   Time
	depth int // high-water total pending at window boundaries

	// Cross-shard sends staged during the current window, one slice per
	// source shard so workers never share a write destination. keyseq
	// carries the per-key tie-break counters, also per source shard.
	outbox    [][]send
	keyseq    []map[string]uint64
	injectBuf []send

	// Cluster-level sampling: ticks on a global grid, run at window
	// barriers after every event before the tick time and before any
	// event at it.
	sampleFns   []func(now Time)
	sampleEvery Time
	samplerOn   bool
	nextTick    Time

	metrics *obs.Registry
	tracer  *obs.Tracer

	cSends   *obs.Counter
	cWindows *obs.Counter

	running bool

	// Scratch reused across windows.
	nexts  []Time
	hasNxt []bool
}

// send is one staged cross-shard delivery. Merge order at injection is
// (at, key, seq): arrival time, then the sender-chosen stable key, then
// the per-key issue sequence — none of which depend on shard placement.
type send struct {
	dst int
	at  Time
	key string
	seq uint64
	fn  func()
}

// NewCluster returns a cluster of n fresh shard engines with the given
// lookahead: the minimum latency every Send must declare. Use Infinity
// for a cluster of fully decoupled shards (no sends allowed) — windows
// then stretch to the next sampler tick or the end of the run.
func NewCluster(n int, lookahead Time) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewCluster with %d shards", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewCluster lookahead %v <= 0", lookahead))
	}
	c := &Cluster{
		shards:    make([]*Engine, n),
		lookahead: lookahead,
		outbox:    make([][]send, n),
		keyseq:    make([]map[string]uint64, n),
		nexts:     make([]Time, n),
		hasNxt:    make([]bool, n),
	}
	for i := range c.shards {
		c.shards[i] = NewEngine()
		c.keyseq[i] = make(map[string]uint64)
	}
	return c
}

// Shard returns shard i's engine. Models bind to their shard's engine
// exactly as they would to a standalone one.
func (c *Cluster) Shard(i int) *Engine { return c.shards[i] }

// NumShards reports the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Lookahead reports the cluster's minimum cross-shard latency.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Now returns the global virtual time: the lower bound of the current
// window while running, the time of the last event after Run returns.
func (c *Cluster) Now() Time { return c.now }

// Pending reports live events summed over all shards. Only meaningful
// at window barriers (sampler ticks, or before/after Run).
func (c *Cluster) Pending() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.live
	}
	return total
}

// Instrument attaches a registry and/or tracer to every shard and
// registers the cluster-wide aggregates. Shards share the sim.events_*
// counters (atomic, so cross-shard increments commute); the pending and
// clock gauges and the events-pending series are cluster-level so the
// snapshot shape does not depend on the shard count. sim.queue_depth_max
// becomes the high-water mark of total pending events measured at
// window boundaries — the only instant the total is well defined under
// parallel execution. The tracer is switched to ordered mode: events
// sort on write by (timestamp, lane, lane sequence), which is invariant
// as long as each lane is written from a single shard.
func (c *Cluster) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	c.metrics = reg
	c.tracer = tr
	tr.Ordered()
	for _, sh := range c.shards {
		sh.instrument(reg, tr)
	}
	c.cSends = reg.Counter("sim.cluster.sends")
	c.cWindows = reg.Counter("sim.cluster.windows")
	reg.GaugeFunc("sim.queue_depth_max", func() float64 { return float64(c.depth) })
	reg.GaugeFunc("sim.pending", func() float64 { return float64(c.Pending()) })
	reg.GaugeFunc("sim.now_s", func() float64 { return float64(c.now) })
	if w := reg.SeriesWindow(); w > 0 {
		ts := reg.TimeSeries("sim.events.pending")
		c.Sample(Time(w), func(now Time) { ts.Observe(float64(now), float64(c.Pending())) })
	}
}

// Metrics returns the attached registry (nil when uninstrumented).
func (c *Cluster) Metrics() *obs.Registry { return c.metrics }

// Tracer returns the attached tracer (nil when uninstrumented).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// Sample registers fn to run on a global sampling grid, like
// Engine.Sample but at cluster scope: a tick at time t runs at a window
// barrier after every event before t and before any event at t, which
// is the only tick placement that is invariant across shard counts. The
// first call fixes the cadence; later calls join it. The sampler is
// self-terminating: one final tick fires after the last event drains.
func (c *Cluster) Sample(interval Time, fn func(now Time)) {
	if fn == nil {
		return
	}
	if c.samplerOn {
		c.sampleFns = append(c.sampleFns, fn)
		return
	}
	if interval <= 0 {
		return
	}
	c.sampleFns = append(c.sampleFns, fn)
	c.sampleEvery = interval
	c.nextTick = interval
	c.samplerOn = true
}

// SampleInterval returns the armed cadence (0 when sampling is off).
func (c *Cluster) SampleInterval() Time {
	if !c.samplerOn {
		return 0
	}
	return c.sampleEvery
}

// Send schedules fn on shard dst at the sending shard's current time
// plus delay, which must be at least the cluster lookahead — that bound
// is what lets every shard run a whole window without hearing from its
// peers. key names the sending entity (a pod, a client, a link) and
// must be owned by a single logical sender: same-time arrivals merge in
// (key, per-key sequence) order, so the merge must not depend on which
// shard the sender landed on. Call it from model code on shard src
// during a window, or from setup code before Run.
func (c *Cluster) Send(src, dst int, key string, delay Time, fn func()) {
	if src < 0 || src >= len(c.shards) || dst < 0 || dst >= len(c.shards) {
		panic(fmt.Sprintf("sim: Send %d->%d outside %d shards", src, dst, len(c.shards)))
	}
	if delay < c.lookahead {
		panic(fmt.Sprintf("sim: Send delay %v below cluster lookahead %v", delay, c.lookahead))
	}
	seq := c.keyseq[src][key]
	c.keyseq[src][key] = seq + 1
	c.outbox[src] = append(c.outbox[src], send{dst: dst, at: c.shards[src].now + delay, key: key, seq: seq, fn: fn})
}

// inject drains every outbox into the destination engines in the merge
// order (at, key, seq). Runs only at barriers, when all workers are
// idle. Engine seq numbers assigned here are deterministic because the
// window sequence and the merge order both are.
func (c *Cluster) inject() {
	buf := c.injectBuf[:0]
	for src := range c.outbox {
		buf = append(buf, c.outbox[src]...)
		c.outbox[src] = c.outbox[src][:0]
	}
	if len(buf) == 0 {
		return
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})
	for i := range buf {
		c.shards[buf[i].dst].At(buf[i].at, buf[i].fn)
		buf[i].fn = nil
	}
	c.cSends.Add(int64(len(buf)))
	c.injectBuf = buf[:0]
}

func (c *Cluster) runTick(at Time) {
	c.now = at
	for _, f := range c.sampleFns {
		f(at)
	}
}

// Run drives the cluster to completion and returns the final virtual
// time. Each iteration injects staged sends, fires any sampler tick
// due, then runs one window [T, min(T+L, next tick)) on every shard
// with work, in parallel on a worker pool. Window bounds derive only
// from global event times, the lookahead, and the tick grid, so the
// window sequence — and with it every merge and tick point — is
// identical for every shard count and GOMAXPROCS setting.
func (c *Cluster) Run() Time {
	if c.running {
		panic("sim: Cluster.Run re-entered")
	}
	c.running = true
	defer func() { c.running = false }()

	n := len(c.shards)
	starts := make([]chan Time, n)
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		starts[i] = make(chan Time)
		go func() {
			for w := range starts[i] {
				c.shards[i].runBefore(w)
				done <- struct{}{}
			}
		}()
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	finalTick := false
	for {
		c.inject()

		// Global minimum next-event time and the boundary census.
		T := Infinity
		any := false
		total := 0
		for i, sh := range c.shards {
			total += sh.live
			t, ok := sh.nextAt()
			c.nexts[i], c.hasNxt[i] = t, ok
			if ok && (!any || t < T) {
				T, any = t, true
			}
		}
		if total > c.depth {
			c.depth = total
		}

		if !any {
			// Drained. The sampler gets one final tick (matching the
			// single-engine sampler, which always fires once more after
			// the model goes quiet) — and that tick may schedule new
			// events, so loop back around.
			if c.samplerOn && !finalTick {
				finalTick = true
				c.runTick(c.nextTick)
				c.nextTick += c.sampleEvery
				continue
			}
			break
		}
		finalTick = false

		// Ticks strictly precede the window that contains their time.
		if c.samplerOn && c.nextTick <= T {
			c.runTick(c.nextTick)
			c.nextTick += c.sampleEvery
			continue
		}

		c.now = T
		w := T + c.lookahead // saturates past Infinity; min() below still bounds it
		if c.samplerOn && c.nextTick < w {
			w = c.nextTick
		}

		active, last := 0, -1
		for i := range c.shards {
			if c.hasNxt[i] && c.nexts[i] < w {
				active++
				last = i
			}
		}
		c.cWindows.Inc()
		if active == 1 {
			// One busy shard: skip the worker-pool round trip. Same
			// execution, same thread confinement (the coordinator is
			// idle while workers run and vice versa).
			c.shards[last].runBefore(w)
			continue
		}
		launched := 0
		for i := range c.shards {
			if c.hasNxt[i] && c.nexts[i] < w {
				starts[i] <- w
				launched++
			}
		}
		for ; launched > 0; launched-- {
			<-done
		}
	}

	end := Time(0)
	for _, sh := range c.shards {
		if sh.now > end {
			end = sh.now
		}
	}
	// The run ends at one global instant for every shard: advance the
	// stragglers' clocks so anything derived from a member engine's Now
	// after the run (utilization gauges divide by it) is independent of
	// which shard happened to host the last event.
	for _, sh := range c.shards {
		sh.now = end
	}
	c.now = end
	return end
}
