package sim

// The pre-rewrite event loop, preserved verbatim in spirit for
// benchmarking: container/heap with boxed push/pop, one allocation per
// scheduled event, lazy deletion with no compaction. The Benchmark*
// pairs in engine_perf_test.go measure the rewrite against this
// baseline; the speedups quoted in EXPERIMENTS.md come from these
// benchmarks, so keep the reference faithful.

import (
	"container/heap"
	"testing"
)

type boxedEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

type boxedQueue []*boxedEvent

func (q boxedQueue) Len() int { return len(q) }
func (q boxedQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q boxedQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *boxedQueue) Push(x any)   { *q = append(*q, x.(*boxedEvent)) }
func (q *boxedQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type boxedEngine struct {
	now   Time
	seq   uint64
	queue boxedQueue
	live  int
}

func (e *boxedEngine) Schedule(delay Time, fn func()) *boxedEvent {
	if delay < 0 {
		delay = 0
	}
	ev := &boxedEvent{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.live++
	return ev
}

func (e *boxedEngine) Cancel(ev *boxedEvent) {
	if ev != nil && !ev.dead {
		ev.dead = true
		e.live--
	}
}

func (e *boxedEngine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > deadline {
			if deadline < Infinity {
				e.now = deadline
			}
			return e.now
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		next.dead = true
		e.live--
		e.now = next.at
		next.fn()
	}
	if deadline < Infinity && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

func (e *boxedEngine) Run() Time { return e.RunUntil(Infinity) }

// BenchmarkBoxedEngineSchedule is BenchmarkEngineSchedule on the old
// engine.
func BenchmarkBoxedEngineSchedule(b *testing.B) {
	e := &boxedEngine{}
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 128; k++ {
			e.Schedule(Time(k%17)*1e-4, fn)
		}
		e.Run()
	}
}

// BenchmarkBoxedEngineCancelHeavy is BenchmarkEngineCancelHeavy on the
// old engine — the leaking case: cancelled far-future timers pile up in
// the heap forever, so per-iteration cost grows with b.N.
func BenchmarkBoxedEngineCancelHeavy(b *testing.B) {
	e := &boxedEngine{}
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evs := make([]*boxedEvent, 0, 256)
		for k := 0; k < 256; k++ {
			evs = append(evs, e.Schedule(1e3+Time(k), fn))
		}
		for _, ev := range evs {
			e.Cancel(ev)
		}
		e.Schedule(1e-5, fn)
		e.RunUntil(e.Now() + 1e-4)
	}
}

func (e *boxedEngine) Now() Time { return e.now }
