// Package sim provides a deterministic discrete-event simulation kernel
// shared by every substrate in this repository: the parallel file system
// model, the disk and flash device models, the TCP incast simulator, the
// Argon scheduler, and the failure-trace generator.
//
// The kernel is a classic event-list engine: a virtual clock, a priority
// queue of timestamped callbacks, and a handful of composable pieces
// layered on top — FIFO servers with bounded concurrency (Server),
// completion barriers (Barrier), and a seedable crash/recovery schedule
// (FaultPlan) that subsystems consume through the FaultSink interface.
// Determinism is guaranteed by (a) a stable tie-break on event insertion
// order and (b) explicit seeding of every random source, so a simulation
// re-run with the same seed reproduces the same trajectory bit for bit.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Time is simulated time in seconds. Using a float64 keeps device models
// (which naturally work in fractional milliseconds) simple; determinism is
// unaffected because all arithmetic is itself deterministic.
type Time float64

// Infinity is a time later than any event the engine will ever dispatch.
const Infinity = Time(math.MaxFloat64)

// Seconds formats a Time for human-readable output.
func (t Time) Seconds() float64 { return float64(t) }

func (t Time) String() string {
	switch {
	case t >= 1:
		return fmt.Sprintf("%.3fs", float64(t))
	case t >= 1e-3:
		return fmt.Sprintf("%.3fms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.3fus", float64(t)*1e6)
	}
}

// An event is a callback scheduled at a virtual timestamp. seq breaks ties
// so that events scheduled earlier at the same timestamp run first.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled (e.g. a TCP
// retransmission timer that is disarmed when the ACK arrives).
type EventID struct{ e *event }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; model concurrency is expressed as interleaved events, not
// goroutines, which is what makes runs reproducible.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nsteps uint64
	live   int // scheduled, not yet dispatched or cancelled
	depth  int // high-water mark of queue length

	// Observability. Both are nil until Instrument is called; every probe
	// site is nil-safe, so an uninstrumented engine pays one branch.
	metrics *obs.Registry
	tracer  *obs.Tracer

	cDispatched *obs.Counter
	cScheduled  *obs.Counter
	cCancelled  *obs.Counter

	// Periodic sampling state (see sampler.go). Armed only when a
	// series-enabled registry is attached, so default runs schedule no
	// extra events.
	sampleFns   []func(now Time)
	sampleEvery Time
	samplerOn   bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Instrument attaches a metrics registry and/or tracer (either may be
// nil). Resources created afterwards (Servers, file systems) pick the
// probe up from the engine, so call this before building the model.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.metrics = reg
	e.tracer = tr
	e.cDispatched = reg.Counter("sim.events_dispatched")
	e.cScheduled = reg.Counter("sim.events_scheduled")
	e.cCancelled = reg.Counter("sim.events_cancelled")
	reg.GaugeFunc("sim.queue_depth_max", func() float64 { return float64(e.depth) })
	reg.GaugeFunc("sim.pending", func() float64 { return float64(e.live) })
	reg.GaugeFunc("sim.now_s", func() float64 { return float64(e.now) })
	if w := reg.SeriesWindow(); w > 0 {
		ts := reg.TimeSeries("sim.events.pending")
		e.Sample(Time(w), func(now Time) { ts.Observe(float64(now), float64(e.live)) })
	}
}

// Metrics returns the attached registry (nil when uninstrumented). A nil
// registry hands out nil instruments, which are valid no-ops.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Tracer returns the attached tracer (nil when uninstrumented).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule runs fn after delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is an error in the
// model, so it panics rather than silently reordering history.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.live++
	if len(e.queue) > e.depth {
		e.depth = len(e.queue)
	}
	e.cScheduled.Inc()
	return EventID{ev}
}

// Cancel disarms a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.e != nil && !id.e.dead {
		id.e.dead = true
		e.live--
		e.cCancelled.Inc()
	}
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil dispatches events with timestamps <= deadline. The clock is left
// at the timestamp of the last dispatched event (or at deadline if that is
// earlier than the next pending event and deadline is finite).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > deadline {
			if deadline < Infinity {
				e.now = deadline
			}
			return e.now
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		// Marking the event dead here makes a late Cancel of a fired event
		// a no-op and keeps the live count exact.
		next.dead = true
		e.live--
		e.now = next.at
		e.nsteps++
		e.cDispatched.Inc()
		next.fn()
	}
	if deadline < Infinity && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of live events still queued. It is O(1):
// the engine maintains a live-event count decremented on cancel and
// dispatch instead of scanning the heap.
func (e *Engine) Pending() int { return e.live }
