// Package sim provides a deterministic discrete-event simulation kernel
// shared by every substrate in this repository: the parallel file system
// model, the disk and flash device models, the TCP incast simulator, the
// Argon scheduler, and the failure-trace generator.
//
// The kernel is a classic event-list engine: a virtual clock, a priority
// queue of timestamped callbacks, and a handful of composable pieces
// layered on top — FIFO servers with bounded concurrency (Server),
// completion barriers (Barrier), a seedable crash/recovery schedule
// (FaultPlan) that subsystems consume through the FaultSink interface,
// and a conservative-lookahead shard coordinator (Cluster) that runs
// several engines as one simulation. Determinism is guaranteed by (a) a
// stable tie-break on event insertion order and (b) explicit seeding of
// every random source, so a simulation re-run with the same seed
// reproduces the same trajectory bit for bit.
package sim

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Time is simulated time in seconds. Using a float64 keeps device models
// (which naturally work in fractional milliseconds) simple; determinism is
// unaffected because all arithmetic is itself deterministic.
type Time float64

// Infinity is a time later than any event the engine will ever dispatch.
const Infinity = Time(math.MaxFloat64)

// Seconds formats a Time for human-readable output.
func (t Time) Seconds() float64 { return float64(t) }

func (t Time) String() string {
	switch {
	case t >= 1:
		return fmt.Sprintf("%.3fs", float64(t))
	case t >= 1e-3:
		return fmt.Sprintf("%.3fms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.3fus", float64(t)*1e6)
	}
}

// An event is a callback scheduled at a virtual timestamp. seq breaks ties
// so that events scheduled earlier at the same timestamp run first. gen
// distinguishes incarnations of a recycled event struct: the engine keeps
// dispatched and cancelled events on a free list, and gen is bumped on
// every recycle so a stale EventID held by the model can never cancel the
// slot's next occupant.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	gen  uint32
}

// lessThan is the engine's dispatch order: time, then insertion order.
func (a *event) lessThan(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// EventID identifies a scheduled event so it can be cancelled (e.g. a TCP
// retransmission timer that is disarmed when the ACK arrives). The zero
// EventID is valid and cancels nothing.
type EventID struct {
	e   *event
	gen uint32
}

// compactMinDead is the floor below which cancelled events are left in
// the heap: tiny queues are cheaper to pop through than to rebuild.
const compactMinDead = 32

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; model concurrency is expressed as interleaved events, not
// goroutines, which is what makes runs reproducible. (A Cluster runs
// several engines on a worker pool, but each engine is still only ever
// touched by one goroutine at a time.)
type Engine struct {
	now    Time
	seq    uint64
	queue  minHeap[*event]
	free   []*event // recycled event structs, reused by At
	dead   int      // cancelled events still occupying heap slots
	nsteps uint64
	live   int // scheduled, not yet dispatched or cancelled
	depth  int // high-water mark of queue length

	// Observability. Both are nil until Instrument is called; every probe
	// site is nil-safe, so an uninstrumented engine pays one branch.
	metrics *obs.Registry
	tracer  *obs.Tracer

	cDispatched *obs.Counter
	cScheduled  *obs.Counter
	cCancelled  *obs.Counter

	// Periodic sampling state (see sampler.go). Armed only when a
	// series-enabled registry is attached, so default runs schedule no
	// extra events.
	sampleFns   []func(now Time)
	sampleEvery Time
	samplerOn   bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Instrument attaches a metrics registry and/or tracer (either may be
// nil). Resources created afterwards (Servers, file systems) pick the
// probe up from the engine, so call this before building the model.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.instrument(reg, tr)
	reg.GaugeFunc("sim.queue_depth_max", func() float64 { return float64(e.depth) })
	reg.GaugeFunc("sim.pending", func() float64 { return float64(e.live) })
	reg.GaugeFunc("sim.now_s", func() float64 { return float64(e.now) })
	if w := reg.SeriesWindow(); w > 0 {
		ts := reg.TimeSeries("sim.events.pending")
		e.Sample(Time(w), func(now Time) { ts.Observe(float64(now), float64(e.live)) })
	}
}

// instrument attaches the registry, tracer, and shared event counters
// but not the whole-simulation gauges or the pending-events series. It
// is the member-engine half of Instrument: a Cluster instruments each
// shard this way and registers cluster-wide aggregates itself, so a
// snapshot carries one "sim.pending" gauge regardless of shard count and
// the counters (atomic, commutative) accumulate across shards.
func (e *Engine) instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.metrics = reg
	e.tracer = tr
	e.cDispatched = reg.Counter("sim.events_dispatched")
	e.cScheduled = reg.Counter("sim.events_scheduled")
	e.cCancelled = reg.Counter("sim.events_cancelled")
}

// Metrics returns the attached registry (nil when uninstrumented). A nil
// registry hands out nil instruments, which are valid no-ops.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Tracer returns the attached tracer (nil when uninstrumented).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule runs fn after delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is an error in the
// model, so it panics rather than silently reordering history.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.dead = t, e.seq, fn, false
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	e.queue.push(ev)
	e.live++
	if e.queue.len() > e.depth {
		e.depth = e.queue.len()
	}
	e.cScheduled.Inc()
	return EventID{e: ev, gen: ev.gen}
}

// recycle returns a dispatched or cancelled event struct to the free
// list. The generation bump invalidates every EventID pointing at it,
// and dropping fn releases the callback's captures immediately.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Cancel disarms a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	ev := id.e
	if ev == nil || ev.dead || ev.gen != id.gen {
		return
	}
	ev.dead = true
	e.dead++
	e.live--
	e.cCancelled.Inc()
	// Lazy deletion leaves the corpse in the heap until it reaches the
	// top. Cancel-heavy models (incast retransmission timers, lease
	// guards) can cancel far faster than the clock drains corpses, so
	// once the majority of the heap is dead we compact: filter the slice
	// in place and re-heapify. The (at, seq) order is untouched, so
	// dispatch order — and therefore the trajectory — is identical.
	if e.dead > compactMinDead && e.dead*2 > e.queue.len() {
		e.compact()
	}
}

func (e *Engine) compact() {
	s := e.queue.s
	kept := s[:0]
	for _, ev := range s {
		if ev.dead {
			e.recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(s); i++ {
		s[i] = nil
	}
	e.queue.s = kept
	e.queue.reinit()
	e.dead = 0
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil dispatches events with timestamps <= deadline. The clock is left
// at the timestamp of the last dispatched event (or at deadline if that is
// earlier than the next pending event and deadline is finite).
func (e *Engine) RunUntil(deadline Time) Time {
	for e.queue.len() > 0 {
		next := e.queue.peek()
		if next.at > deadline {
			if deadline < Infinity {
				e.now = deadline
			}
			return e.now
		}
		e.queue.pop()
		if next.dead {
			e.dead--
			e.recycle(next)
			continue
		}
		e.dispatch(next)
	}
	if deadline < Infinity && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// runBefore dispatches events with timestamps strictly before w and
// leaves the clock at the last dispatched event. It is the shard half of
// a Cluster window: exclusive of w, so events at the window bound run in
// the next window, after cross-shard arrivals (which are always >= w)
// have been merged in.
func (e *Engine) runBefore(w Time) {
	for e.queue.len() > 0 {
		next := e.queue.peek()
		if next.at >= w {
			return
		}
		e.queue.pop()
		if next.dead {
			e.dead--
			e.recycle(next)
			continue
		}
		e.dispatch(next)
	}
}

func (e *Engine) dispatch(ev *event) {
	// Marking the event dead makes a late Cancel of a fired event a
	// no-op and keeps the live count exact; recycling before the call
	// lets fn's own scheduling reuse the struct (the generation bump
	// keeps the old EventID inert).
	ev.dead = true
	e.live--
	e.now = ev.at
	e.nsteps++
	e.cDispatched.Inc()
	fn := ev.fn
	e.recycle(ev)
	fn()
}

// nextAt returns the timestamp of the earliest live event, sweeping any
// dead corpses off the top of the heap on the way.
func (e *Engine) nextAt() (Time, bool) {
	for e.queue.len() > 0 {
		next := e.queue.peek()
		if !next.dead {
			return next.at, true
		}
		e.queue.pop()
		e.dead--
		e.recycle(next)
	}
	return 0, false
}

// Pending reports the number of live events still queued. It is O(1):
// the engine maintains a live-event count decremented on cancel and
// dispatch instead of scanning the heap.
func (e *Engine) Pending() int { return e.live }

// QueueLen reports occupied heap slots, live or dead. It exceeds
// Pending() by exactly the cancelled events not yet compacted or popped,
// which is what the compaction regression test pins down.
func (e *Engine) QueueLen() int { return e.queue.len() }
