package sim

// An inlined generic binary min-heap. container/heap costs an interface
// method call for every Less/Swap/Len plus an interface{} boxing
// allocation on every Push and Pop; at millions of events per run that
// overhead dominates the engine. Instantiating this heap at a concrete
// pointer type devirtualizes every comparison, so the compiler inlines
// lessThan into the sift loops and Push/Pop allocate nothing beyond the
// amortized backing-slice growth.

// heapOrdered is the element constraint: a strict-weak "less than" on
// the element's own type. For *event this is the (at, seq) total order.
type heapOrdered[E any] interface {
	lessThan(E) bool
}

// minHeap is a binary min-heap over a slice. The zero value is an empty
// heap ready for use.
type minHeap[E heapOrdered[E]] struct {
	s []E
}

func (h *minHeap[E]) len() int { return len(h.s) }

// peek returns the minimum element; the heap must be non-empty.
func (h *minHeap[E]) peek() E { return h.s[0] }

func (h *minHeap[E]) push(x E) {
	h.s = append(h.s, x)
	h.up(len(h.s) - 1)
}

// pop removes and returns the minimum element; the heap must be
// non-empty. The vacated slot is zeroed so popped elements do not leak
// through the backing array.
func (h *minHeap[E]) pop() E {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero E
	s[n] = zero
	h.s = s[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

// up sifts the element at index i toward the root. It moves holes, not
// pairs: the element is held in a register and written once.
func (h *minHeap[E]) up(i int) {
	s := h.s
	x := s[i]
	for i > 0 {
		p := (i - 1) / 2
		if !x.lessThan(s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = x
}

// down sifts the element at index i toward the leaves.
func (h *minHeap[E]) down(i int) {
	s := h.s
	n := len(s)
	x := s[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].lessThan(s[l]) {
			m = r
		}
		if !s[m].lessThan(x) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = x
}

// reinit re-establishes the heap invariant over the whole slice after
// the caller has edited it in place (compaction filters dead events).
// O(n), cheaper than n pushes.
func (h *minHeap[E]) reinit() {
	for i := len(h.s)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
