package sim

import (
	"testing"

	"repro/internal/obs"
)

func TestEngineCancelAfterFiredIsNoOp(t *testing.T) {
	e := NewEngine()
	var id EventID
	fired := 0
	id = e.Schedule(1, func() { fired++ })
	e.Schedule(2, func() {})
	e.RunUntil(1)
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	// Cancelling the already-fired event must not corrupt the live count.
	e.Cancel(id)
	e.Cancel(id)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after cancelling a fired event, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after run, want 0", got)
	}
}

func TestEnginePendingCountsLiveEvents(t *testing.T) {
	e := NewEngine()
	ids := make([]EventID, 5)
	for i := range ids {
		ids[i] = e.Schedule(Time(i+1), func() {})
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending() = %d, want 5", got)
	}
	e.Cancel(ids[1])
	e.Cancel(ids[3])
	e.Cancel(ids[3]) // double cancel must not double count
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after two cancels, want 3", got)
	}
	e.RunUntil(2)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after dispatching one, want 2", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after run, want 0", got)
	}
}

func TestServerUtilizationWithCapacityTwo(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	// Two overlapping requests at t=0 (finish at 2), one submitted at t=5
	// (finishes at 7): busy intervals [0,2] and [5,7] over an elapsed 7.
	s.Submit(2, nil)
	s.Submit(2, nil)
	e.Schedule(5, func() { s.Submit(2, nil) })
	e.Run()
	if got := s.BusyTime(); got != 4 {
		t.Fatalf("BusyTime() = %v, want 4 (overlap counted once)", got)
	}
	want := 4.0 / 7.0
	if got := s.Utilization(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Utilization() = %v, want %v", got, want)
	}
}

func TestServerMeanWait(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	// First request starts immediately (wait 0), second waits 2, third 4.
	s.Submit(2, nil)
	s.Submit(2, nil)
	s.Submit(2, nil)
	e.Run()
	if got := s.WaitedTime(); got != 6 {
		t.Fatalf("WaitedTime() = %v, want 6", got)
	}
	if got := s.MeanWait(); got != 2 {
		t.Fatalf("MeanWait() = %v, want 2", got)
	}
}

func TestServerMeanWaitEmpty(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	if got := s.MeanWait(); got != 0 {
		t.Fatalf("MeanWait() on idle server = %v, want 0", got)
	}
}

func TestEngineInstrumentCounters(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine()
	e.Instrument(reg, nil)
	id := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	e.Cancel(id)
	e.Run()
	s := reg.Snapshot()
	if got := s.Counters["sim.events_scheduled"]; got != 2 {
		t.Fatalf("events_scheduled = %d, want 2", got)
	}
	if got := s.Counters["sim.events_dispatched"]; got != 1 {
		t.Fatalf("events_dispatched = %d, want 1", got)
	}
	if got := s.Counters["sim.events_cancelled"]; got != 1 {
		t.Fatalf("events_cancelled = %d, want 1", got)
	}
	if got := s.Gauges["sim.pending"]; got != 0 {
		t.Fatalf("sim.pending = %v, want 0", got)
	}
	if got := s.Gauges["sim.queue_depth_max"]; got != 2 {
		t.Fatalf("sim.queue_depth_max = %v, want 2", got)
	}
}

func TestServerInstrumentHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine()
	e.Instrument(reg, nil)
	s := NewServer(e, 1)
	s.Instrument("test.srv")
	s.Submit(2, nil) // wait 0
	s.Submit(2, nil) // wait 2
	e.Run()
	snap := reg.Snapshot()
	h, ok := snap.Histograms["test.srv.wait_s"]
	if !ok || h.Count != 2 {
		t.Fatalf("wait histogram = %+v", h)
	}
	if h.Sum != 2 {
		t.Fatalf("wait histogram sum = %v, want 2", h.Sum)
	}
	svc, ok := snap.Histograms["test.srv.service_s"]
	if !ok || svc.Count != 2 || svc.Sum != 4 {
		t.Fatalf("service histogram = %+v", svc)
	}
	if got := snap.Gauges["test.srv.utilization"]; got != 1 {
		t.Fatalf("utilization gauge = %v, want 1", got)
	}
	if got := snap.Gauges["test.srv.mean_wait_s"]; got != 1 {
		t.Fatalf("mean_wait gauge = %v, want 1", got)
	}
}

func TestUninstrumentedServerStillAccounts(t *testing.T) {
	// No registry anywhere: the nil-instrument fast path must leave the
	// plain accounting intact.
	e := NewEngine()
	s := NewServer(e, 1)
	s.Instrument("ignored") // engine has no registry; stays disabled
	s.Submit(1, nil)
	s.Submit(1, nil)
	e.Run()
	if s.Served() != 2 || s.MeanWait() != 0.5 {
		t.Fatalf("served %d meanWait %v", s.Served(), s.MeanWait())
	}
}
