package sim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// recordingSink logs transitions with their virtual timestamps.
type recordingSink struct {
	eng   *Engine
	log   []string
	times []Time
}

func (s *recordingSink) CrashTarget(t string) {
	s.log = append(s.log, "crash "+t)
	s.times = append(s.times, s.eng.Now())
}

func (s *recordingSink) RecoverTarget(t string) {
	s.log = append(s.log, "recover "+t)
	s.times = append(s.times, s.eng.Now())
}

func TestFaultPlanSchedulesCrashAndRecovery(t *testing.T) {
	eng := NewEngine()
	sink := &recordingSink{eng: eng}
	plan := NewFaultPlan()
	plan.Add("oss1", 5, 2)
	plan.Add("oss0", 1, 0) // permanent
	plan.Schedule(eng, sink)
	eng.Run()

	wantLog := []string{"crash oss0", "crash oss1", "recover oss1"}
	wantTimes := []Time{1, 5, 7}
	if !reflect.DeepEqual(sink.log, wantLog) {
		t.Fatalf("log = %v, want %v", sink.log, wantLog)
	}
	if !reflect.DeepEqual(sink.times, wantTimes) {
		t.Fatalf("times = %v, want %v", sink.times, wantTimes)
	}
}

func TestFaultPlanEventsSortedStable(t *testing.T) {
	plan := NewFaultPlan()
	plan.Add("b", 3, 1)
	plan.Add("a", 1, 0)
	plan.Add("c", 3, 2) // same time as b: insertion order preserved
	evs := plan.Events()
	want := []FaultEvent{
		{Target: "a", At: 1},
		{Target: "b", At: 3, Downtime: 1},
		{Target: "c", At: 3, Downtime: 2},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
}

func TestNilAndEmptyFaultPlansAreNoOps(t *testing.T) {
	eng := NewEngine()
	sink := &recordingSink{eng: eng}
	var nilPlan *FaultPlan
	if nilPlan.Len() != 0 || nilPlan.Events() != nil {
		t.Fatal("nil plan not empty")
	}
	nilPlan.Schedule(eng, sink)
	NewFaultPlan().Schedule(eng, sink)
	if eng.Pending() != 0 {
		t.Fatalf("empty plans scheduled %d events", eng.Pending())
	}
	if eng.Run() != 0 || len(sink.log) != 0 {
		t.Fatal("empty plans produced transitions")
	}
}

func TestFaultPlanInstrumentsInjections(t *testing.T) {
	eng := NewEngine()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	eng.Instrument(reg, tr)
	plan := NewFaultPlan().Add("oss0", 1, 1).Add("oss1", 2, 0)
	plan.Schedule(eng, &recordingSink{eng: eng})
	eng.Run()
	s := reg.Snapshot()
	if got := s.Counters["sim.faults.injected"]; got != 2 {
		t.Fatalf("sim.faults.injected = %d, want 2", got)
	}
	if got := s.Counters["sim.faults.recovered"]; got != 1 {
		t.Fatalf("sim.faults.recovered = %d, want 1", got)
	}
	if tr.Len() != 3 { // 2 crashes + 1 recovery
		t.Fatalf("trace events = %d, want 3", tr.Len())
	}
}

func TestFaultPlanNegativeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative fault time")
		}
	}()
	NewFaultPlan().Add("oss0", -1, 0)
}
