package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// recordingSink logs transitions with their virtual timestamps.
type recordingSink struct {
	eng   *Engine
	log   []string
	times []Time
}

func (s *recordingSink) CrashTarget(t string) {
	s.log = append(s.log, "crash "+t)
	s.times = append(s.times, s.eng.Now())
}

func (s *recordingSink) RecoverTarget(t string) {
	s.log = append(s.log, "recover "+t)
	s.times = append(s.times, s.eng.Now())
}

func TestFaultPlanSchedulesCrashAndRecovery(t *testing.T) {
	eng := NewEngine()
	sink := &recordingSink{eng: eng}
	plan := NewFaultPlan()
	plan.Add("oss1", 5, 2)
	plan.Add("oss0", 1, 0) // permanent
	plan.Schedule(eng, sink)
	eng.Run()

	wantLog := []string{"crash oss0", "crash oss1", "recover oss1"}
	wantTimes := []Time{1, 5, 7}
	if !reflect.DeepEqual(sink.log, wantLog) {
		t.Fatalf("log = %v, want %v", sink.log, wantLog)
	}
	if !reflect.DeepEqual(sink.times, wantTimes) {
		t.Fatalf("times = %v, want %v", sink.times, wantTimes)
	}
}

func TestFaultPlanEventsSortedStable(t *testing.T) {
	plan := NewFaultPlan()
	plan.Add("b", 3, 1)
	plan.Add("a", 1, 0)
	plan.Add("c", 3, 2) // same time as b: insertion order preserved
	evs := plan.Events()
	want := []FaultEvent{
		{Target: "a", At: 1},
		{Target: "b", At: 3, Downtime: 1},
		{Target: "c", At: 3, Downtime: 2},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
}

func TestNilAndEmptyFaultPlansAreNoOps(t *testing.T) {
	eng := NewEngine()
	sink := &recordingSink{eng: eng}
	var nilPlan *FaultPlan
	if nilPlan.Len() != 0 || nilPlan.Events() != nil {
		t.Fatal("nil plan not empty")
	}
	nilPlan.Schedule(eng, sink)
	NewFaultPlan().Schedule(eng, sink)
	if eng.Pending() != 0 {
		t.Fatalf("empty plans scheduled %d events", eng.Pending())
	}
	if eng.Run() != 0 || len(sink.log) != 0 {
		t.Fatal("empty plans produced transitions")
	}
}

func TestFaultPlanInstrumentsInjections(t *testing.T) {
	eng := NewEngine()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	eng.Instrument(reg, tr)
	plan := NewFaultPlan().Add("oss0", 1, 1).Add("oss1", 2, 0)
	plan.Schedule(eng, &recordingSink{eng: eng})
	eng.Run()
	s := reg.Snapshot()
	if got := s.Counters["sim.faults.injected"]; got != 2 {
		t.Fatalf("sim.faults.injected = %d, want 2", got)
	}
	if got := s.Counters["sim.faults.recovered"]; got != 1 {
		t.Fatalf("sim.faults.recovered = %d, want 1", got)
	}
	if tr.Len() != 3 { // 2 crashes + 1 recovery
		t.Fatalf("trace events = %d, want 3", tr.Len())
	}
}

func TestFaultPlanNegativeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative fault time")
		}
	}()
	NewFaultPlan().Add("oss0", -1, 0)
}

func TestFaultPlanValidateAcceptsSaneSchedules(t *testing.T) {
	cases := []*FaultPlan{
		nil,
		NewFaultPlan(),
		NewFaultPlan().Add("oss0", 1, 1).Add("oss1", 1, 1), // same time, different targets
		NewFaultPlan().Add("oss0", 1, 2).Add("oss0", 3, 0), // crash exactly at recovery
		NewFaultPlan().Add("oss0", 1, 1).Add("oss0", 10, 0).Add("oss1", 0, 0),
	}
	for i, p := range cases {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
}

func TestFaultPlanValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name   string
		plan   *FaultPlan
		reason string
	}{
		{"unsorted", NewFaultPlan().Add("oss0", 5, 1).Add("oss0", 1, 1), "unsorted"},
		{"overlap", NewFaultPlan().Add("oss0", 1, 10).Add("oss0", 5, 1), "overlapping"},
		{"after permanent", NewFaultPlan().Add("oss0", 1, 0).Add("oss0", 9, 1), "overlapping"},
		{"same instant", NewFaultPlan().Add("oss0", 2, 1).Add("oss0", 2, 1), "overlapping"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("%s: errors.Is(err, ErrInvalidPlan) = false for %v", tc.name, err)
		}
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %T is not *PlanError", tc.name, err)
			continue
		}
		if pe.Target != "oss0" || pe.Reason != tc.reason {
			t.Errorf("%s: got target %q reason %q, want oss0/%s", tc.name, pe.Target, pe.Reason, tc.reason)
		}
	}
}

func TestScheduleRejectsInvalidPlanArmsNothing(t *testing.T) {
	eng := NewEngine()
	sink := &recordingSink{eng: eng}
	plan := NewFaultPlan().Add("oss0", 5, 1).Add("oss0", 1, 1)
	if err := plan.Schedule(eng, sink); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("Schedule() = %v, want ErrInvalidPlan", err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("invalid plan armed %d events", eng.Pending())
	}
	eng.Run()
	if len(sink.log) != 0 {
		t.Fatalf("invalid plan produced transitions: %v", sink.log)
	}
}
