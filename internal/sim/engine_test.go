package sim

import (
	"testing"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events dispatched out of insertion order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(1, func() {
		e.Schedule(1, func() {
			hits++
			if e.Now() != 2 {
				t.Errorf("nested event at %v, want 2", e.Now())
			}
		})
	})
	e.Run()
	if hits != 1 {
		t.Fatalf("nested event ran %d times, want 1", hits)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(1, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1, func() { fired = append(fired, 1) })
	e.Schedule(5, func() { fired = append(fired, 5) })
	e.RunUntil(2)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %v, want 2 (clock advanced to deadline)", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event not dispatched: %v", fired)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineScheduleNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-1, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{1.5, "1.500s"},
		{0.002, "2.000ms"},
		{0.0000025, "2.500us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestServerSerializesRequests(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var completions []Time
	for i := 0; i < 3; i++ {
		s.Submit(2, func(at Time) { completions = append(completions, at) })
	}
	e.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
	if s.Served() != 3 {
		t.Errorf("Served() = %d, want 3", s.Served())
	}
}

func TestServerParallelCapacity(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	var completions []Time
	for i := 0; i < 4; i++ {
		s.Submit(2, func(at Time) { completions = append(completions, at) })
	}
	e.Run()
	// Two in service at once: finish at 2,2,4,4.
	want := []Time{2, 2, 4, 4}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
}

func TestServerBusyTimeAndUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	s.Submit(3, nil)
	e.Run()
	// Idle until we submit more later.
	e.Schedule(7, func() { s.Submit(2, nil) }) // busy 10..12
	e.Run()
	if got := s.BusyTime(); got != 5 {
		t.Fatalf("BusyTime() = %v, want 5", got)
	}
	u := s.Utilization()
	if u < 0.41 || u > 0.42 {
		t.Fatalf("Utilization() = %v, want ~5/12", u)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine()
	var doneAt Time = -1
	b := NewBarrier(e, 3, func(at Time) { doneAt = at })
	e.Schedule(1, b.Arrive)
	e.Schedule(2, b.Arrive)
	e.Schedule(9, b.Arrive)
	e.Run()
	if doneAt != 9 {
		t.Fatalf("barrier completed at %v, want 9 (last arrival)", doneAt)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining() = %d, want 0", b.Remaining())
	}
}

func TestBarrierOverArrivalPanics(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 1, nil)
	b.Arrive()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Arrive did not panic")
		}
	}()
	b.Arrive()
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		s := NewServer(e, 1)
		var out []Time
		for i := 0; i < 50; i++ {
			d := Time(i%7) * 0.1
			e.Schedule(d, func() {
				s.Submit(0.05, func(at Time) { out = append(out, at) })
			})
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
