package sim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// shardSink is a per-shard FaultSink: each target's outage toggles
// state owned by that target's shard and spawns follow-up load on the
// same engine, so crashes and recoveries landing on different shards
// exercise the full windowed interleave.
type shardSink struct {
	eng    *Engine
	down   map[string]bool
	cRecov *obs.Counter
}

func (s *shardSink) CrashTarget(target string) {
	s.down[target] = true
	// A repair job two windows out, on this shard's own engine.
	s.eng.Schedule(0.004, func() {
		if s.down[target] {
			s.cRecov.Inc()
		}
	})
}

func (s *shardSink) RecoverTarget(target string) { s.down[target] = false }

// faultShardFixture schedules one plan across a cluster of the given
// shard count, with background load on every shard and time series
// sampling armed, and returns the snapshot and series CSV bytes.
func faultShardFixture(t *testing.T, shards int) (snap, csv []byte) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.EnableTimeSeries(0.005)
	tr := obs.NewTracer()
	cl := NewCluster(shards, Infinity)
	cl.Instrument(reg, tr)

	plan := NewFaultPlan()
	for i := 0; i < 8; i++ {
		target := fmt.Sprintf("oss%02d", i)
		plan.Add(target, Time(i)*0.003+0.001, 0.01)
		plan.Add(target, 0.05+Time(i)*0.002, 0) // later, permanent
	}
	place := func(target string) int {
		var h int
		for _, c := range target {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return h % shards
	}
	sinks := make([]FaultSink, shards)
	cPending := reg.Counter("test.repairs.pending")
	for i := range sinks {
		sinks[i] = &shardSink{eng: cl.Shard(i), down: make(map[string]bool), cRecov: cPending}
	}
	if err := plan.ScheduleSharded(cl, place, sinks); err != nil {
		t.Fatal(err)
	}
	// Background load so windows always have work beyond the faults: a
	// fixed set of logical events, each placed by its own stable name —
	// the model must not depend on the shard count.
	for k := 0; k < 30; k++ {
		home := place(fmt.Sprintf("bg%02d", k))
		cl.Shard(home).At(Time(k%10)*0.007, func() {})
	}
	cl.Run()

	var sb, cb bytes.Buffer
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSeriesCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), cb.Bytes()
}

// TestFaultPlanShardedByteIdentical: crash/recovery events and sampler
// ticks landing on different shards produce byte-identical sim.faults.*
// counters and sim.events.pending series across shard counts 1 and 4.
func TestFaultPlanShardedByteIdentical(t *testing.T) {
	snap1, csv1 := faultShardFixture(t, 1)
	snap4, csv4 := faultShardFixture(t, 4)
	if !bytes.Equal(snap1, snap4) {
		t.Errorf("snapshots differ between 1 and 4 shards:\n1: %s\n4: %s", snap1, snap4)
	}
	if !bytes.Equal(csv1, csv4) {
		t.Errorf("series CSVs differ between 1 and 4 shards:\n1: %s\n4: %s", csv1, csv4)
	}
	if !bytes.Contains(snap1, []byte(`"sim.faults.injected": 16`)) {
		t.Errorf("snapshot missing expected sim.faults.injected count: %s", snap1)
	}
	if !bytes.Contains(snap1, []byte(`"sim.faults.recovered": 8`)) {
		t.Errorf("snapshot missing expected sim.faults.recovered count: %s", snap1)
	}
	if !bytes.Contains(csv1, []byte("sim.events.pending")) {
		t.Errorf("series CSV missing sim.events.pending: %s", csv1)
	}
}

func TestScheduleShardedValidates(t *testing.T) {
	plan := NewFaultPlan().Add("a", 1, 0)
	cl := NewCluster(2, Infinity)
	reg := obs.NewRegistry()
	cl.Instrument(reg, nil)

	err := plan.ScheduleSharded(cl, func(string) int { return 0 }, make([]FaultSink, 1))
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("wrong sink count: err = %v, want ErrInvalidPlan", err)
	}
	err = plan.ScheduleSharded(cl, func(string) int { return 7 }, []FaultSink{&shardSink{down: map[string]bool{}}, &shardSink{down: map[string]bool{}}})
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("out-of-range placement: err = %v, want ErrInvalidPlan", err)
	}
	bad := NewFaultPlan().Add("a", 5, 0).Add("a", 1, 0)
	err = bad.ScheduleSharded(cl, func(string) int { return 0 }, []FaultSink{&shardSink{down: map[string]bool{}}, &shardSink{down: map[string]bool{}}})
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("unsorted plan: err = %v, want ErrInvalidPlan", err)
	}
}
