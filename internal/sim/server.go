package sim

import "repro/internal/obs"

// Server models a resource that serves requests one (or k) at a time in
// FIFO order with caller-supplied service times: a disk arm, a metadata
// server CPU, a network link. It is the workhorse queueing primitive used
// by the parallel file system and directory-service models.
type Server struct {
	eng     *Engine
	cap     int
	busy    int
	waiting []*request

	// Busy time accounting for utilization reporting.
	busySince  Time
	busyTotal  Time
	served     uint64
	started    uint64
	waitedTime Time

	// Optional instrumentation (nil unless Instrument is called on an
	// engine with a registry attached).
	hWait    *obs.Histogram
	hService *obs.Histogram
}

type request struct {
	service Time
	arrived Time
	done    func(Time)
}

// NewServer returns a FIFO server with the given concurrency (capacity >= 1).
func NewServer(eng *Engine, capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	return &Server{eng: eng, cap: capacity}
}

// Instrument registers this server's wait/service histograms and
// utilization gauge under the given name prefix in the engine's metrics
// registry. A no-op when the engine is uninstrumented.
func (s *Server) Instrument(name string) {
	reg := s.eng.Metrics()
	if reg == nil {
		return
	}
	s.hWait = reg.Histogram(name+".wait_s", obs.TimeBuckets())
	s.hService = reg.Histogram(name+".service_s", obs.TimeBuckets())
	reg.GaugeFunc(name+".utilization", s.Utilization)
	reg.GaugeFunc(name+".served", func() float64 { return float64(s.served) })
	reg.GaugeFunc(name+".mean_wait_s", func() float64 { return float64(s.MeanWait()) })
}

// Submit enqueues a request requiring the given service time; done (if
// non-nil) is invoked at completion with the completion timestamp.
func (s *Server) Submit(service Time, done func(Time)) {
	r := &request{service: service, arrived: s.eng.Now(), done: done}
	if s.busy < s.cap {
		s.start(r, s.eng.Now())
		return
	}
	s.waiting = append(s.waiting, r)
}

// start dequeues r into service at time at, recording the queue wait it
// accumulated (zero for requests that found a free slot immediately).
func (s *Server) start(r *request, at Time) {
	s.waitedTime += at - r.arrived
	s.started++
	s.hWait.Observe(float64(at - r.arrived))
	s.hService.Observe(float64(r.service))
	if s.busy == 0 {
		s.busySince = at
	}
	s.busy++
	s.eng.At(at+r.service, func() { s.finish(r) })
}

func (s *Server) finish(r *request) {
	s.busy--
	s.served++
	if s.busy == 0 {
		s.busyTotal += s.eng.Now() - s.busySince
	}
	if r.done != nil {
		r.done(s.eng.Now())
	}
	if len(s.waiting) > 0 && s.busy < s.cap {
		next := s.waiting[0]
		copy(s.waiting, s.waiting[1:])
		s.waiting = s.waiting[:len(s.waiting)-1]
		s.start(next, s.eng.Now())
	}
}

// QueueLen reports the number of requests waiting (not in service).
func (s *Server) QueueLen() int { return len(s.waiting) }

// Served reports the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// WaitedTime reports the total queue wait accumulated by requests that
// have entered service.
func (s *Server) WaitedTime() Time { return s.waitedTime }

// MeanWait reports the mean queue wait over all requests that have
// entered service (requests that started immediately contribute zero).
func (s *Server) MeanWait() Time {
	if s.started == 0 {
		return 0
	}
	return s.waitedTime / Time(s.started)
}

// BusyTime reports accumulated time with at least one request in service.
func (s *Server) BusyTime() Time {
	t := s.busyTotal
	if s.busy > 0 {
		t += s.eng.Now() - s.busySince
	}
	return t
}

// Utilization reports BusyTime divided by elapsed simulated time.
func (s *Server) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.BusyTime()) / float64(s.eng.Now())
}

// Barrier invokes done once Arrive has been called n times. It models the
// synchronization point at the end of a parallel phase (all ranks finished
// writing their checkpoint shard).
type Barrier struct {
	need int
	got  int
	done func(Time)
	eng  *Engine
}

// NewBarrier creates a barrier over n arrivals.
func NewBarrier(eng *Engine, n int, done func(Time)) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs n > 0")
	}
	return &Barrier{need: n, done: done, eng: eng}
}

// Arrive records one arrival; the last arrival fires the completion
// callback at the current time.
func (b *Barrier) Arrive() {
	b.got++
	if b.got == b.need && b.done != nil {
		b.done(b.eng.Now())
	}
	if b.got > b.need {
		panic("sim: barrier arrivals exceed n")
	}
}

// Remaining reports how many arrivals are still outstanding.
func (b *Barrier) Remaining() int { return b.need - b.got }
