package sim

import "testing"

func TestSampleCadenceAndTermination(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Sample(1, func(now Time) { at = append(at, now) })
	if e.SampleInterval() != 1 {
		t.Fatalf("SampleInterval = %v, want 1", e.SampleInterval())
	}
	// A model event keeps the engine alive past several ticks; once it
	// fires and the queue drains, the sampler must stop rescheduling
	// itself so Run returns.
	e.Schedule(3.5, func() {})
	end := e.Run()
	want := []Time{1, 2, 3, 4}
	if len(at) != len(want) {
		t.Fatalf("sampled at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("sampled at %v, want %v", at, want)
		}
	}
	if end != 4 {
		t.Fatalf("Run ended at %v, want 4 (final sampler tick)", end)
	}
}

func TestSampleLaterCallsJoinCadence(t *testing.T) {
	e := NewEngine()
	var a, b int
	e.Sample(2, func(Time) { a++ })
	e.Sample(99, func(Time) { b++ }) // interval ignored: joins the grid
	if e.SampleInterval() != 2 {
		t.Fatalf("SampleInterval = %v, want 2", e.SampleInterval())
	}
	e.Schedule(5, func() {})
	e.Run()
	if a != b || a != 3 {
		t.Fatalf("a=%d b=%d, want both 3 (ticks at 2,4,6)", a, b)
	}
}

func TestSampleNoOpCases(t *testing.T) {
	e := NewEngine()
	e.Sample(1, nil)
	e.Sample(0, func(Time) { t.Fatal("armed with non-positive interval") })
	if e.SampleInterval() != 0 {
		t.Fatalf("SampleInterval = %v, want 0 (never armed)", e.SampleInterval())
	}
	e.Schedule(1, func() {})
	e.Run()
}
