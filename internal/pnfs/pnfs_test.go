package pnfs

import (
	"testing"
)

func TestStackStrings(t *testing.T) {
	if PlainNFS.String() != "nfs" || PNFSFiles.String() != "pnfs-files" ||
		PNFSNoCache.String() != "pnfs-no-layout-cache" {
		t.Fatal("stack names wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(Config{})
}

func TestRunsComplete(t *testing.T) {
	for _, s := range []Stack{PlainNFS, PNFSFiles, PNFSNoCache} {
		r := Run(DefaultConfig(8, 8, s))
		if r.Elapsed <= 0 || r.AggregateBps <= 0 {
			t.Fatalf("%v: empty result %+v", s, r)
		}
	}
}

func TestPlainNFSBottlenecksAtOneServer(t *testing.T) {
	cfg := DefaultConfig(16, 8, PlainNFS)
	r := Run(cfg)
	// All bytes pass one NIC: aggregate cannot exceed it.
	if r.AggregateBps > cfg.ServerNIC*1.01 {
		t.Fatalf("NFS aggregate %.0f exceeds the single server NIC %.0f",
			r.AggregateBps, cfg.ServerNIC)
	}
}

func TestPNFSScalesWithDataServers(t *testing.T) {
	// The core pNFS claim: direct parallel access scales aggregate
	// bandwidth with data servers.
	rs := ScalingSweep(16, []int{1, 2, 4, 8}, PNFSFiles)
	if rs[1].AggregateBps < 1.6*rs[0].AggregateBps {
		t.Fatalf("2 servers %.0f, want ~2x 1 server %.0f",
			rs[1].AggregateBps, rs[0].AggregateBps)
	}
	if rs[3].AggregateBps < 3*rs[0].AggregateBps {
		t.Fatalf("8 servers %.0f, want >= 3x 1 server %.0f",
			rs[3].AggregateBps, rs[0].AggregateBps)
	}
}

func TestNFSStaysFlat(t *testing.T) {
	rs := ScalingSweep(16, []int{1, 8}, PlainNFS)
	ratio := rs[1].AggregateBps / rs[0].AggregateBps
	if ratio > 1.1 {
		t.Fatalf("plain NFS scaled %.2fx with data servers it cannot reach", ratio)
	}
}

func TestPNFSBeatsNFSAtScale(t *testing.T) {
	nfs := Run(DefaultConfig(16, 8, PlainNFS))
	p := Run(DefaultConfig(16, 8, PNFSFiles))
	if p.AggregateBps < 3*nfs.AggregateBps {
		t.Fatalf("pNFS %.0f should be >= 3x NFS %.0f at 8 data servers",
			p.AggregateBps, nfs.AggregateBps)
	}
}

func TestLayoutCachingMatters(t *testing.T) {
	cached := Run(DefaultConfig(16, 8, PNFSFiles))
	uncached := Run(DefaultConfig(16, 8, PNFSNoCache))
	if cached.LayoutGets != 16 {
		t.Fatalf("cached layouts fetched %d times, want once per client", cached.LayoutGets)
	}
	if uncached.LayoutGets <= cached.LayoutGets {
		t.Fatal("no-cache ablation should fetch far more layouts")
	}
	if uncached.AggregateBps >= cached.AggregateBps {
		t.Fatalf("layout refetching should cost bandwidth: %.0f vs %.0f",
			uncached.AggregateBps, cached.AggregateBps)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(DefaultConfig(8, 4, PNFSFiles))
	b := Run(DefaultConfig(8, 4, PNFSFiles))
	if a.Elapsed != b.Elapsed {
		t.Fatal("non-deterministic")
	}
}
