// Package pnfs models Parallel NFS (§2.2 of the report; NFSv4.1), the
// standardization effort PDSI's Michigan/CITI team carried into the Linux
// kernel: conventional NFS funnels every byte through one server — the
// NAS bottleneck — while pNFS lets a client ask the metadata server for a
// *layout* (a map of which data servers hold which stripes) and then move
// data directly and in parallel, "eliminating the server bottlenecks
// inherent to NAS access methods".
//
// The model compares three stacks on identical hardware:
//
//   - PlainNFS: one server fronts all storage; all clients' data passes
//     through its NIC.
//   - PNFSFiles: the NFSv4.1 files layout — clients fetch a layout from
//     the metadata server (an extra round trip, cached thereafter) and
//     stripe I/O directly across data servers.
//   - PNFSNoCache: an ablation where layouts are re-fetched per I/O,
//     showing why layout caching (and its recall protocol) matters.
package pnfs

import (
	"fmt"

	"repro/internal/sim"
)

// Stack selects the protocol variant.
type Stack int

// Variants under comparison.
const (
	PlainNFS Stack = iota
	PNFSFiles
	PNFSNoCache
)

func (s Stack) String() string {
	switch s {
	case PlainNFS:
		return "nfs"
	case PNFSFiles:
		return "pnfs-files"
	case PNFSNoCache:
		return "pnfs-no-layout-cache"
	default:
		return fmt.Sprintf("Stack(%d)", int(s))
	}
}

// Config describes the deployment and workload.
type Config struct {
	Clients     int
	DataServers int
	Stack       Stack

	// ServerNIC is each server's (and the lone NFS server's) bandwidth in
	// bytes/second; ClientNIC each client's.
	ServerNIC float64
	ClientNIC float64
	// RPC is one request-response latency; LayoutGet the metadata
	// server's service time for a layout grant.
	RPC       sim.Time
	LayoutGet sim.Time

	// BytesPerClient of sequential I/O per client, issued in IOSize
	// requests.
	BytesPerClient int64
	IOSize         int64
}

// DefaultConfig models the GbE cluster scale CITI tested at.
func DefaultConfig(clients, dataServers int, stack Stack) Config {
	return Config{
		Clients:        clients,
		DataServers:    dataServers,
		Stack:          stack,
		ServerNIC:      1e9 / 8 * 0.9,
		ClientNIC:      1e9 / 8 * 0.9,
		RPC:            sim.Time(200e-6),
		LayoutGet:      sim.Time(400e-6),
		BytesPerClient: 64 << 20,
		IOSize:         1 << 20,
	}
}

func (c Config) validate() error {
	if c.Clients < 1 || c.DataServers < 1 || c.BytesPerClient < c.IOSize || c.IOSize < 1 {
		return fmt.Errorf("pnfs: invalid config %+v", c)
	}
	return nil
}

// Result reports one run.
type Result struct {
	Config       Config
	Elapsed      sim.Time
	AggregateBps float64
	LayoutGets   int64
}

// Run executes the workload: every client writes BytesPerClient
// sequentially through the configured stack.
func Run(cfg Config) Result {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	mds := sim.NewServer(eng, 1)
	dataSrv := make([]*sim.Server, cfg.DataServers)
	for i := range dataSrv {
		dataSrv[i] = sim.NewServer(eng, 1)
	}
	nfsSrv := sim.NewServer(eng, 1) // the single NAS head for PlainNFS

	var res Result
	res.Config = cfg
	done := sim.NewBarrier(eng, cfg.Clients, func(at sim.Time) { res.Elapsed = at })

	for c := 0; c < cfg.Clients; c++ {
		c := c
		clientNIC := sim.NewServer(eng, 1)
		nIOs := cfg.BytesPerClient / cfg.IOSize
		hasLayout := false

		var issue func(k int64)
		doIO := func(k int64) {
			// The client's own NIC serializes its transfers.
			clientNIC.Submit(sim.Time(float64(cfg.IOSize)/cfg.ClientNIC), func(sim.Time) {
				switch cfg.Stack {
				case PlainNFS:
					// Everything through the single server's NIC.
					eng.Schedule(cfg.RPC, func() {
						nfsSrv.Submit(sim.Time(float64(cfg.IOSize)/cfg.ServerNIC), func(sim.Time) {
							issue(k + 1)
						})
					})
				default:
					// Direct to the data server owning this stripe.
					srv := dataSrv[(int(k)+c)%cfg.DataServers]
					eng.Schedule(cfg.RPC, func() {
						srv.Submit(sim.Time(float64(cfg.IOSize)/cfg.ServerNIC), func(sim.Time) {
							issue(k + 1)
						})
					})
				}
			})
		}
		issue = func(k int64) {
			if k == nIOs {
				done.Arrive()
				return
			}
			needLayout := cfg.Stack == PNFSNoCache ||
				(cfg.Stack == PNFSFiles && !hasLayout)
			if needLayout {
				hasLayout = true
				res.LayoutGets++
				eng.Schedule(cfg.RPC, func() {
					mds.Submit(cfg.LayoutGet, func(sim.Time) { doIO(k) })
				})
				return
			}
			doIO(k)
		}
		issue(0)
	}
	eng.Run()
	total := float64(cfg.Clients) * float64(cfg.BytesPerClient)
	if res.Elapsed > 0 {
		res.AggregateBps = total / float64(res.Elapsed)
	}
	return res
}

// ScalingSweep measures aggregate bandwidth as data servers grow, for the
// classic pNFS scaling curve (NFS stays flat at one server's NIC).
func ScalingSweep(clients int, serverCounts []int, stack Stack) []Result {
	out := make([]Result, 0, len(serverCounts))
	for _, n := range serverCounts {
		out = append(out, Run(DefaultConfig(clients, n, stack)))
	}
	return out
}
