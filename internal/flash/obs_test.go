package flash

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func TestInstrumentCountsFTLActivity(t *testing.T) {
	reg := obs.NewRegistry()
	res := SustainedRandomWriteProbed(smallSpec(), 1.0, 10, 1, 7, reg, "flash.dev00")
	if len(res) == 0 {
		t.Fatal("sustained write produced no measurement windows")
	}
	s := reg.Snapshot()
	for _, name := range []string{
		"flash.dev00.page_writes",
		"flash.dev00.gc_collections",
		"flash.dev00.gc_relocations",
		"flash.dev00.erases",
	} {
		if s.Counters[name] == 0 {
			t.Errorf("counter %q = 0, want > 0", name)
		}
	}
	for _, name := range []string{"flash.dev00.pool_depth", "flash.dev00.write_amp", "flash.dev00.max_wear"} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("gauge %q missing", name)
		}
	}
	if s.Gauges["flash.dev00.write_amp"] < 1 {
		t.Errorf("write amplification gauge = %v, want >= 1", s.Gauges["flash.dev00.write_amp"])
	}
}

func TestInstrumentSeriesFollowWindows(t *testing.T) {
	reg := obs.NewRegistry()
	reg.EnableTimeSeries(0.5)
	res := SustainedRandomWriteProbed(smallSpec(), 1.0, 10, 1, 7, reg, "flash.dev00")
	s := reg.Snapshot()
	pool := s.Series["flash.dev00.pool_depth"]
	amp := s.Series["flash.dev00.write_amp"]
	if len(pool.Values) == 0 || len(amp.Values) == 0 {
		t.Fatalf("series empty: pool %d points, amp %d points", len(pool.Values), len(amp.Values))
	}
	// The series mirrors the returned sweep: its last value is the last
	// window's pool depth.
	if got, want := pool.Values[len(pool.Values)-1], float64(res[len(res)-1].FreePool); got != want {
		t.Fatalf("final pool series value = %v, want %v", got, want)
	}
}

func TestProbedRunsAreDeterministic(t *testing.T) {
	run := func() []byte {
		reg := obs.NewRegistry()
		reg.EnableTimeSeries(0.5)
		SustainedRandomWriteProbed(smallSpec(), 1.0, 10, 1, 7, reg, "flash.dev00")
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("same-seed flash snapshots differ:\n%s\nvs\n%s", a, b)
	}
}

func TestUnprobedRunUnchanged(t *testing.T) {
	// The probed variant with a nil registry must produce the identical
	// sweep as the plain entry point.
	plain := SustainedRandomWrite(smallSpec(), 1.0, 10, 1, 7)
	probed := SustainedRandomWriteProbed(smallSpec(), 1.0, 10, 1, 7, nil, "")
	if len(plain) != len(probed) {
		t.Fatalf("window counts differ: %d vs %d", len(plain), len(probed))
	}
	for i := range plain {
		if plain[i] != probed[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, plain[i], probed[i])
		}
	}
}
