package flash

import "testing"

// Table 1 of the report, the published measurements this package's presets
// are calibrated against. We assert the model lands in the right *band*
// (within ~2.5x) and preserves every qualitative ordering the report
// highlights; exact matches are not expected from a scale model.
var table1 = []struct {
	name        string
	spec        Spec
	readIOPS    float64 // x10^3 in the report
	seqWriteMBs float64
}{
	{"X25-M", IntelX25M(), 19100, 100},
	{"Colossus", OCZColossus(), 5210, 200},
	{"FusionIO", FusionIODuo(), 107000, 690},
	{"RamSan", RamSan20(), 143000, 675},
	{"tachION", ViridentTachION(), 156000, 1200},
}

func TestTable1ReadIOPSBands(t *testing.T) {
	for _, row := range table1 {
		got := RandomReadRate(row.spec, 2000, 3)
		lo, hi := row.readIOPS/2.5, row.readIOPS*2.5
		if got < lo || got > hi {
			t.Errorf("%s: read IOPS %.0f outside band [%.0f, %.0f]", row.name, got, lo, hi)
		}
	}
}

func TestTable1ReadIOPSOrderingPreserved(t *testing.T) {
	// For every device pair, the model's ordering must match the table's.
	got := make([]float64, len(table1))
	for i, row := range table1 {
		got[i] = RandomReadRate(row.spec, 2000, 3)
	}
	for i := range table1 {
		for j := i + 1; j < len(table1); j++ {
			pub := table1[i].readIOPS < table1[j].readIOPS
			mod := got[i] < got[j]
			if pub != mod {
				t.Errorf("ordering %s vs %s: published %v/%v, model %.0f/%.0f",
					table1[i].name, table1[j].name,
					table1[i].readIOPS, table1[j].readIOPS, got[i], got[j])
			}
		}
	}
}

func TestTable1SeqWriteBands(t *testing.T) {
	for _, row := range table1 {
		got := SequentialWriteRate(row.spec) / 1e6
		lo, hi := row.seqWriteMBs/2.5, row.seqWriteMBs*2.5
		if got < lo || got > hi {
			t.Errorf("%s: seq write %.0f MB/s outside band [%.0f, %.0f]", row.name, got, lo, hi)
		}
	}
}

func TestPCIeDevicesHaveMoreSpareArea(t *testing.T) {
	// The Figure 14 separation depends on PCIe presets carrying more
	// overprovisioning than the SATA consumer parts.
	for _, sata := range []Spec{IntelX25M(), OCZColossus()} {
		for _, pcie := range []Spec{FusionIODuo(), RamSan20(), ViridentTachION()} {
			if pcie.SpareFraction <= sata.SpareFraction {
				t.Fatalf("%s spare %.2f should exceed %s spare %.2f",
					pcie.Name, pcie.SpareFraction, sata.Name, sata.SpareFraction)
			}
		}
	}
}

func TestAllDevicesSurviveFullOverwrite(t *testing.T) {
	for _, spec := range AllTable1Devices() {
		d := NewDevice(spec)
		for i := 0; i < spec.UserPages; i++ {
			d.WritePage(i)
		}
		for i := 0; i < spec.UserPages; i++ {
			d.WritePage(i)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}
