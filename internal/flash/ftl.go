// Package flash models a NAND solid-state disk at the flash translation
// layer (FTL): page-level logical-to-physical mapping, append-only
// programming into open erase blocks, a pool of pre-erased blocks, and
// greedy garbage collection that relocates live pages before erasing a
// victim block.
//
// This is the mechanism behind two findings of the report's flash studies
// (Figure 11, Figure 14, WISH'09): random reads are phenomenally faster
// than magnetic disk, and sustained random writing is fast only until the
// pre-erased pool drains, after which the true cost of garbage collection
// shows through as roughly an order of magnitude slowdown — with the
// severity governed by the device's overprovisioned spare area.
package flash

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// BlockState tracks an erase block's lifecycle.
type BlockState uint8

// Erase block lifecycle states.
const (
	BlockFree BlockState = iota // erased, ready to program
	BlockOpen                   // partially programmed
	BlockFull                   // fully programmed
)

type block struct {
	state    BlockState
	nextPage int   // next free page index within the block
	valid    int   // count of still-live pages
	pages    []int // logical page stored at each physical page, -1 if stale/unused
	erases   int   // wear counter
}

// Device is a simulated SSD. All times are per-operation latencies at the
// flash chip; Channels models internal parallelism applied to sequential
// (striped) transfers.
type Device struct {
	Spec Spec

	blocks     []block
	mapping    []int32 // logical page -> physical page number, -1 if unwritten
	freeBlocks []int   // stack of erased block indices
	open       int     // currently open block for host writes, -1 if none

	// Counters.
	HostWrites  int64 // pages written by the host
	HostReads   int64
	Relocations int64 // pages moved by GC
	Erases      int64

	// Instrument handles (see obs.go); nil until Instrument is called.
	cPageWrites  *obs.Counter
	cPageReads   *obs.Counter
	cGC          *obs.Counter
	cRelocations *obs.Counter
	cErases      *obs.Counter
}

// Spec is a device description. Presets matching Table 1 of the report are
// in presets.go.
type Spec struct {
	Name          string
	PageSize      int64   // bytes, typically 4096
	PagesPerBlock int     // typically 64-128
	UserPages     int     // logical (host-visible) capacity in pages
	SpareFraction float64 // overprovisioning: physical = user * (1+spare)
	TRead         sim.Time
	TProg         sim.Time
	TErase        sim.Time
	Channels      int // parallel channels for striped sequential transfers

	// GCLowWater is the free-block count that triggers garbage collection;
	// a small number models the drained pre-erased pool.
	GCLowWater int
}

// NewDevice builds a freshly formatted (fully erased) device.
func NewDevice(spec Spec) *Device {
	if spec.PageSize <= 0 || spec.PagesPerBlock <= 0 || spec.UserPages <= 0 {
		panic(fmt.Sprintf("flash: invalid spec %+v", spec))
	}
	if spec.Channels < 1 {
		spec.Channels = 1
	}
	if spec.GCLowWater < 1 {
		spec.GCLowWater = 2
	}
	physPages := int(float64(spec.UserPages) * (1 + spec.SpareFraction))
	nblocks := (physPages + spec.PagesPerBlock - 1) / spec.PagesPerBlock
	if nblocks < spec.GCLowWater+2 {
		nblocks = spec.GCLowWater + 2
	}
	d := &Device{
		Spec:    spec,
		blocks:  make([]block, nblocks),
		mapping: make([]int32, spec.UserPages),
		open:    -1,
	}
	for i := range d.blocks {
		d.blocks[i].pages = make([]int, spec.PagesPerBlock)
		for j := range d.blocks[i].pages {
			d.blocks[i].pages[j] = -1
		}
		d.freeBlocks = append(d.freeBlocks, i)
	}
	for i := range d.mapping {
		d.mapping[i] = -1
	}
	return d
}

// FreeBlocks reports the size of the pre-erased pool.
func (d *Device) FreeBlocks() int { return len(d.freeBlocks) }

// WriteAmplification is total pages programmed divided by host pages
// written; 1.0 means GC never relocated anything.
func (d *Device) WriteAmplification() float64 {
	if d.HostWrites == 0 {
		return 1
	}
	return float64(d.HostWrites+d.Relocations) / float64(d.HostWrites)
}

// ReadPage returns the latency to read logical page lpn.
func (d *Device) ReadPage(lpn int) sim.Time {
	if lpn < 0 || lpn >= d.Spec.UserPages {
		panic(fmt.Sprintf("flash: read lpn %d out of range", lpn))
	}
	d.HostReads++
	d.cPageReads.Inc()
	return d.Spec.TRead
}

// WritePage writes logical page lpn and returns the total latency of the
// operation, including any garbage collection performed inline. This
// foreground-GC accounting is what produces the sustained-random-write
// cliff: a fresh device never GCs, a dirty one pays relocations on the
// host's critical path.
func (d *Device) WritePage(lpn int) sim.Time {
	if lpn < 0 || lpn >= d.Spec.UserPages {
		panic(fmt.Sprintf("flash: write lpn %d out of range", lpn))
	}
	var elapsed sim.Time

	// Invalidate the stale copy.
	if old := d.mapping[lpn]; old >= 0 {
		b := int(old) / d.Spec.PagesPerBlock
		p := int(old) % d.Spec.PagesPerBlock
		d.blocks[b].pages[p] = -1
		d.blocks[b].valid--
	}

	// Ensure an open block with a free page. GC may run first and may
	// itself leave d.open pointing at a block with free pages; ensureOpenSlot
	// reuses it rather than orphaning it.
	if d.open < 0 || d.blocks[d.open].nextPage == d.Spec.PagesPerBlock {
		elapsed += d.ensureFreeBlock()
		d.ensureOpenSlot()
	}

	b := &d.blocks[d.open]
	ppn := d.open*d.Spec.PagesPerBlock + b.nextPage
	b.pages[b.nextPage] = lpn
	b.nextPage++
	b.valid++
	d.mapping[lpn] = int32(ppn)
	d.HostWrites++
	d.cPageWrites.Inc()
	return elapsed + d.Spec.TProg
}

// ensureOpenSlot guarantees d.open names a block with at least one free
// page, retiring the current open block to BlockFull and drawing a
// replacement from the free pool when needed. It is the only place a block
// enters or leaves the open state, which keeps exactly one block open at a
// time — orphaned open blocks would silently leak physical space.
func (d *Device) ensureOpenSlot() {
	if d.open >= 0 && d.blocks[d.open].nextPage < d.Spec.PagesPerBlock {
		return
	}
	if d.open >= 0 {
		d.blocks[d.open].state = BlockFull
	}
	d.open = d.popFree()
	d.blocks[d.open].state = BlockOpen
}

func (d *Device) popFree() int {
	n := len(d.freeBlocks) - 1
	if n < 0 {
		panic("flash: free-block pool exhausted (spare area too small for GC reserve)")
	}
	idx := d.freeBlocks[n]
	d.freeBlocks = d.freeBlocks[:n]
	blk := &d.blocks[idx]
	blk.nextPage = 0
	blk.valid = 0
	for j := range blk.pages {
		blk.pages[j] = -1
	}
	return idx
}

// ensureFreeBlock runs greedy GC until the free pool is above the low-water
// mark, returning the time spent relocating and erasing.
func (d *Device) ensureFreeBlock() sim.Time {
	var elapsed sim.Time
	for len(d.freeBlocks) < d.Spec.GCLowWater {
		victim := d.pickVictim()
		if victim < 0 {
			break // nothing reclaimable; device is pathologically full
		}
		elapsed += d.collect(victim)
	}
	return elapsed
}

// pickVictim chooses the full block with the fewest valid pages (greedy),
// skipping the open block and any block with no reclaimable space — erasing
// a fully-valid block costs a block to rehouse its pages and gains nothing,
// so it can never make progress. Returns -1 if no useful victim exists.
func (d *Device) pickVictim() int {
	best, bestValid := -1, d.Spec.PagesPerBlock
	for i := range d.blocks {
		b := &d.blocks[i]
		if b.state != BlockFull || i == d.open {
			continue
		}
		if b.valid < bestValid {
			best, bestValid = i, b.valid
		}
	}
	return best
}

// collect relocates the victim's valid pages into the GC's own open block
// stream and erases the victim.
func (d *Device) collect(victim int) sim.Time {
	var elapsed sim.Time
	d.cGC.Inc()
	vb := &d.blocks[victim]
	for p := 0; p < d.Spec.PagesPerBlock; p++ {
		lpn := vb.pages[p]
		if lpn < 0 {
			continue
		}
		// Read the live page and program it into the open block. If the
		// open block is exhausted we must draw from the free pool; GC is
		// guaranteed progress because the victim frees a whole block.
		elapsed += d.Spec.TRead
		d.ensureOpenSlot()
		ob := &d.blocks[d.open]
		ppn := d.open*d.Spec.PagesPerBlock + ob.nextPage
		ob.pages[ob.nextPage] = lpn
		ob.nextPage++
		ob.valid++
		d.mapping[lpn] = int32(ppn)
		d.Relocations++
		d.cRelocations.Inc()
		elapsed += d.Spec.TProg
	}
	// Erase the victim and return it to the pool.
	vb.state = BlockFree
	vb.valid = 0
	vb.nextPage = 0
	for j := range vb.pages {
		vb.pages[j] = -1
	}
	vb.erases++
	d.Erases++
	d.cErases.Inc()
	d.freeBlocks = append(d.freeBlocks, victim)
	return elapsed + d.Spec.TErase
}

// SeqReadBandwidth returns bytes/second for large striped sequential reads
// across all channels.
func (d *Device) SeqReadBandwidth() float64 {
	return float64(d.Spec.PageSize) * float64(d.Spec.Channels) / float64(d.Spec.TRead)
}

// SeqWriteBandwidth returns bytes/second for large striped sequential
// writes on a fresh device (no GC on the critical path).
func (d *Device) SeqWriteBandwidth() float64 {
	return float64(d.Spec.PageSize) * float64(d.Spec.Channels) / float64(d.Spec.TProg)
}

// RandomReadIOPS is the single-channel random read rate.
func (d *Device) RandomReadIOPS() float64 {
	return float64(d.Spec.Channels) / float64(d.Spec.TRead)
}

// CheckInvariants validates internal FTL consistency; tests call it after
// workloads. It returns an error describing the first violation found.
func (d *Device) CheckInvariants() error {
	// Every mapped logical page must point at a physical page that claims it.
	for lpn, ppn := range d.mapping {
		if ppn < 0 {
			continue
		}
		b := int(ppn) / d.Spec.PagesPerBlock
		p := int(ppn) % d.Spec.PagesPerBlock
		if b >= len(d.blocks) {
			return fmt.Errorf("lpn %d maps to out-of-range block %d", lpn, b)
		}
		if got := d.blocks[b].pages[p]; got != lpn {
			return fmt.Errorf("lpn %d maps to ppn %d but block records lpn %d", lpn, ppn, got)
		}
	}
	// Valid counters must match page arrays.
	for i := range d.blocks {
		count := 0
		for _, lpn := range d.blocks[i].pages {
			if lpn >= 0 {
				count++
			}
		}
		if count != d.blocks[i].valid {
			return fmt.Errorf("block %d valid=%d but %d live pages", i, d.blocks[i].valid, count)
		}
	}
	// Free list blocks must be marked free.
	for _, idx := range d.freeBlocks {
		if d.blocks[idx].state != BlockFree {
			return fmt.Errorf("free-list block %d has state %d", idx, d.blocks[idx].state)
		}
	}
	// At most one block may be open, and it must be d.open; anything else
	// is a leak of physical space.
	for i := range d.blocks {
		if d.blocks[i].state == BlockOpen && i != d.open {
			return fmt.Errorf("block %d open but d.open = %d (leaked open block)", i, d.open)
		}
	}
	return nil
}

// MaxWear returns the highest per-block erase count (for wear tests).
func (d *Device) MaxWear() int {
	m := 0
	for i := range d.blocks {
		if d.blocks[i].erases > m {
			m = d.blocks[i].erases
		}
	}
	return m
}
