package flash

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func smallSpec() Spec {
	return Spec{
		Name:          "test",
		PageSize:      4096,
		PagesPerBlock: 8,
		UserPages:     256,
		SpareFraction: 0.25,
		TRead:         sim.Time(25e-6),
		TProg:         sim.Time(200e-6),
		TErase:        sim.Time(1.5e-3),
		Channels:      1,
		GCLowWater:    2,
	}
}

func TestFreshDeviceWritesWithoutGC(t *testing.T) {
	d := NewDevice(smallSpec())
	for i := 0; i < 64; i++ {
		if got := d.WritePage(i); got != d.Spec.TProg {
			t.Fatalf("fresh write %d cost %v, want pure program %v", i, got, d.Spec.TProg)
		}
	}
	if d.Relocations != 0 || d.Erases != 0 {
		t.Fatalf("fresh device GCed: reloc=%d erases=%d", d.Relocations, d.Erases)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	d := NewDevice(smallSpec())
	d.WritePage(5)
	d.WritePage(5)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The open block should hold exactly one valid copy of lpn 5.
	valid := 0
	for i := range d.blocks {
		valid += d.blocks[i].valid
	}
	if valid != 1 {
		t.Fatalf("device holds %d valid pages after overwrite, want 1", valid)
	}
}

func TestGCTriggersWhenPoolDrains(t *testing.T) {
	d := NewDevice(smallSpec())
	r := rand.New(rand.NewSource(1))
	// Random-write 4x the logical capacity; GC must have run.
	for i := 0; i < d.Spec.UserPages*4; i++ {
		d.WritePage(r.Intn(d.Spec.UserPages))
	}
	if d.Erases == 0 {
		t.Fatal("no erases after 4x-capacity random writes")
	}
	if d.WriteAmplification() <= 1.0 {
		t.Fatalf("write amplification = %v, want > 1 under random writes", d.WriteAmplification())
	}
	if d.FreeBlocks() < 1 {
		t.Fatalf("free pool exhausted: %d", d.FreeBlocks())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOverwriteHasLowAmplification(t *testing.T) {
	d := NewDevice(smallSpec())
	// Write the device sequentially three full times. Sequential
	// invalidation empties whole blocks, so GC victims are nearly free.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < d.Spec.UserPages; i++ {
			d.WritePage(i)
		}
	}
	if wa := d.WriteAmplification(); wa > 1.3 {
		t.Fatalf("sequential write amplification = %v, want near 1", wa)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorseThanSequentialAmplification(t *testing.T) {
	seqD := NewDevice(smallSpec())
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < seqD.Spec.UserPages; i++ {
			seqD.WritePage(i)
		}
	}
	randD := NewDevice(smallSpec())
	r := rand.New(rand.NewSource(2))
	for i := 0; i < randD.Spec.UserPages*4; i++ {
		randD.WritePage(r.Intn(randD.Spec.UserPages))
	}
	if randD.WriteAmplification() <= seqD.WriteAmplification() {
		t.Fatalf("random WA %v should exceed sequential WA %v",
			randD.WriteAmplification(), seqD.WriteAmplification())
	}
}

func TestMappingAlwaysConsistentProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDevice(smallSpec())
		for _, op := range ops {
			d.WritePage(int(op) % d.Spec.UserPages)
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDevice(smallSpec())
	for _, fn := range []func(){
		func() { d.WritePage(-1) },
		func() { d.WritePage(d.Spec.UserPages) },
		func() { d.ReadPage(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range op did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSustainedRandomWriteDegrades(t *testing.T) {
	// The Figure 14 / WISH'09 result: sustained random write starts near the
	// fresh rate and degrades sharply once the pre-erased pool depletes.
	res := SustainedRandomWrite(IntelX25M(), 1.0, 60, 1, 99)
	if len(res) < 5 {
		t.Fatalf("too few windows: %d", len(res))
	}
	first, last := res[0].IOPS, res[len(res)-1].IOPS
	if ratio := first / last; ratio < 3 {
		t.Fatalf("low-spare device degraded only %.1fx (first %.0f last %.0f IOPS), want >= 3x",
			ratio, first, last)
	}
}

func TestHighOverprovisionDegradesLess(t *testing.T) {
	degradation := func(spec Spec) float64 {
		res := SustainedRandomWrite(spec, 1.0, 60, 1, 99)
		return res[0].IOPS / res[len(res)-1].IOPS
	}
	sata := degradation(IntelX25M())
	pcie := degradation(RamSan20())
	if pcie >= sata {
		t.Fatalf("high-spare device degradation %.1fx should be below low-spare %.1fx", pcie, sata)
	}
}

func TestFlashRandomReadsBeatDiskByOrders(t *testing.T) {
	// Report: "random read throughput is phenomenally higher than magnetic
	// disks (which are closer to 100 IOPS)".
	for _, spec := range AllTable1Devices() {
		iops := RandomReadRate(spec, 2000, 3)
		if iops < 5000 {
			t.Fatalf("%s random read IOPS = %.0f, want >> disk's ~100", spec.Name, iops)
		}
	}
}

func TestTable1OrderingHolds(t *testing.T) {
	// PCIe devices should beat SATA devices on read IOPS, as in Table 1.
	sata := RandomReadRate(IntelX25M(), 2000, 3)
	pcie := RandomReadRate(ViridentTachION(), 2000, 3)
	if pcie < 4*sata {
		t.Fatalf("PCIe read IOPS %.0f should dwarf SATA %.0f", pcie, sata)
	}
}

func TestFreshVsSteadyWriteRate(t *testing.T) {
	fresh := FreshRandomWriteRate(IntelX25M(), 5)
	steady := SteadyRandomWriteRate(IntelX25M(), 5)
	if steady >= fresh {
		t.Fatalf("steady write rate %.0f should trail fresh %.0f", steady, fresh)
	}
	// Report: "the true cost of random writes shows through as 10 times
	// slower". Allow a broad band around that.
	if ratio := fresh / steady; ratio < 2.5 {
		t.Fatalf("fresh/steady = %.1f, want a pronounced cliff", ratio)
	}
}

func TestSequentialWriteRateNearSpecBandwidth(t *testing.T) {
	spec := FusionIODuo()
	got := SequentialWriteRate(spec)
	want := float64(spec.PageSize) * float64(spec.Channels) / float64(spec.TProg)
	if got < want*0.6 || got > want*1.01 {
		t.Fatalf("sequential write rate %.0f B/s, want near %.0f", got, want)
	}
}

func TestWearStaysBounded(t *testing.T) {
	d := NewDevice(smallSpec())
	r := rand.New(rand.NewSource(4))
	for i := 0; i < d.Spec.UserPages*10; i++ {
		d.WritePage(r.Intn(d.Spec.UserPages))
	}
	// Greedy GC with a free-list stack isn't perfect wear leveling, but no
	// block should be erased wildly more than the average.
	avg := float64(d.Erases) / float64(len(d.blocks))
	if max := float64(d.MaxWear()); max > avg*6+4 {
		t.Fatalf("max wear %v vs average %v: pathological imbalance", max, avg)
	}
}
