package flash

import (
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SweepResult is one measurement window from a sustained workload run.
type SweepResult struct {
	WindowStart sim.Time
	IOPS        float64
	FreePool    int
	WriteAmp    float64
}

// SustainedRandomWrite issues 4K random writes over spanFraction of the
// device's logical space for the given simulated duration, reporting IOPS
// per measurement window. This regenerates Figure 14: the fresh-device
// plateau, the cliff when the pre-erased pool drains, and the steady state
// set by overprovisioning.
func SustainedRandomWrite(spec Spec, spanFraction float64, duration, window sim.Time, seed int64) []SweepResult {
	return SustainedRandomWriteProbed(spec, spanFraction, duration, window, seed, nil, "")
}

// SustainedRandomWriteProbed is SustainedRandomWrite with the device's
// FTL probes registered under prefix in reg (both may be zero for an
// unprobed run; the workload itself is unchanged either way). When the
// registry has series enabled, the pool depth and write amplification
// are also recorded as sim-time series per measurement window.
func SustainedRandomWriteProbed(spec Spec, spanFraction float64, duration, window sim.Time, seed int64, reg *obs.Registry, prefix string) []SweepResult {
	d := NewDevice(spec)
	d.Instrument(reg, prefix)
	var tsPool, tsAmp *obs.TimeSeries
	if reg.SeriesWindow() > 0 && prefix != "" {
		tsPool = reg.TimeSeries(prefix + ".pool_depth")
		tsAmp = reg.TimeSeries(prefix + ".write_amp")
	}
	r := rand.New(rand.NewSource(seed))
	span := int(float64(spec.UserPages) * spanFraction)
	if span < 1 {
		span = 1
	}

	var results []SweepResult
	var now, windowStart sim.Time
	writesInWindow := 0
	for now < duration {
		lpn := r.Intn(span)
		now += d.WritePage(lpn)
		writesInWindow++
		if now-windowStart >= window {
			results = append(results, SweepResult{
				WindowStart: windowStart,
				IOPS:        float64(writesInWindow) / float64(now-windowStart),
				FreePool:    d.FreeBlocks(),
				WriteAmp:    d.WriteAmplification(),
			})
			tsPool.Observe(float64(now), float64(d.FreeBlocks()))
			tsAmp.Observe(float64(now), d.WriteAmplification())
			windowStart = now
			writesInWindow = 0
		}
	}
	return results
}

// RandomReadRate measures achieved random 4K read IOPS over n operations.
func RandomReadRate(spec Spec, n int, seed int64) float64 {
	d := NewDevice(spec)
	r := rand.New(rand.NewSource(seed))
	// Populate so reads hit written pages (latency model doesn't care, but
	// keep the workload honest).
	for i := 0; i < spec.UserPages; i += spec.PagesPerBlock {
		d.WritePage(i)
	}
	var elapsed sim.Time
	for i := 0; i < n; i++ {
		elapsed += d.ReadPage(r.Intn(spec.UserPages))
	}
	return float64(n) / float64(elapsed)
}

// FreshRandomWriteRate measures random 4K write IOPS on a fresh device
// before the pre-erased pool drains (the "peak" number vendors quote).
func FreshRandomWriteRate(spec Spec, seed int64) float64 {
	d := NewDevice(spec)
	r := rand.New(rand.NewSource(seed))
	// Stop well before the spare area is consumed.
	n := spec.UserPages / 4
	var elapsed sim.Time
	for i := 0; i < n; i++ {
		elapsed += d.WritePage(r.Intn(spec.UserPages))
	}
	return float64(n) / float64(elapsed)
}

// SteadyRandomWriteRate measures random write IOPS after deliberately
// aging the device (writing several times its capacity).
func SteadyRandomWriteRate(spec Spec, seed int64) float64 {
	d := NewDevice(spec)
	r := rand.New(rand.NewSource(seed))
	// Age: 3x capacity of random writes.
	for i := 0; i < spec.UserPages*3; i++ {
		d.WritePage(r.Intn(spec.UserPages))
	}
	// Measure.
	n := spec.UserPages / 2
	var elapsed sim.Time
	for i := 0; i < n; i++ {
		elapsed += d.WritePage(r.Intn(spec.UserPages))
	}
	return float64(n) / float64(elapsed)
}

// SequentialWriteRate measures large sequential write bandwidth in
// bytes/second over one full pass of the device.
func SequentialWriteRate(spec Spec) float64 {
	d := NewDevice(spec)
	var elapsed sim.Time
	for i := 0; i < spec.UserPages; i++ {
		elapsed += d.WritePage(i) / sim.Time(spec.Channels)
	}
	return float64(spec.UserPages) * float64(spec.PageSize) / float64(elapsed)
}
