package flash

import "repro/internal/sim"

// Presets approximating the five devices of Table 1 in the report (NERSC
// flash evaluation). Latencies are chosen so that the derived peak
// sequential bandwidths and 4K IOPS land near the published measurements;
// overprovisioning fractions are chosen so the sustained-random-write
// degradation (Figure 14) separates the SATA consumer devices (small spare
// area, severe cliff) from the PCIe devices (large spare area, gentle
// decline), as observed.
//
// UserPages is deliberately small (a scale model) so simulations run in
// milliseconds; all reported metrics are intensive (per-op, per-second),
// not extensive, so scale does not change the shapes.

// scaleUserPages is the simulated logical capacity in 4 KiB pages (32 MiB).
const scaleUserPages = 8192

// IntelX25M models the Intel X25-M SATA device (200/100 MB/s, 19.1K/1.49K IOPS).
func IntelX25M() Spec {
	return Spec{
		Name:          "Intel X25-M (SATA)",
		PageSize:      4096,
		PagesPerBlock: 64,
		UserPages:     scaleUserPages,
		SpareFraction: 0.07,
		TRead:         sim.Time(52e-6),  // ~19.2K IOPS single-channel equivalent
		TProg:         sim.Time(220e-6), // fresh ~4.5K IOPS; sustained collapses via GC
		TErase:        sim.Time(2e-3),
		Channels:      10, // 4096B/52us * 10 ~ 780MB/s raw; seq capped below by host interface in benches
		GCLowWater:    2,
	}
}

// OCZColossus models the OCZ Colossus SATA device (200/200 MB/s, 5.21K/1.85K IOPS).
func OCZColossus() Spec {
	return Spec{
		Name:          "OCZ Colossus (SATA)",
		PageSize:      4096,
		PagesPerBlock: 64,
		UserPages:     scaleUserPages,
		SpareFraction: 0.08,
		TRead:         sim.Time(192e-6), // ~5.2K IOPS
		TProg:         sim.Time(300e-6),
		TErase:        sim.Time(2e-3),
		Channels:      16,
		GCLowWater:    2,
	}
}

// FusionIODuo models the FusionIO ioDrive Duo PCIe device (800/690 MB/s, 107K/111K IOPS).
func FusionIODuo() Spec {
	return Spec{
		Name:          "FusionIO ioDrive Duo (PCIe-4x)",
		PageSize:      4096,
		PagesPerBlock: 64,
		UserPages:     scaleUserPages,
		SpareFraction: 0.35,
		TRead:         sim.Time(9.3e-6), // ~107K IOPS
		TProg:         sim.Time(9.0e-6), // ~111K IOPS with massive parallelism folded in
		TErase:        sim.Time(1.5e-3),
		Channels:      2,
		GCLowWater:    4,
	}
}

// RamSan20 models the Texas Memory Systems RamSan-20 (700/675 MB/s, 143K/156K IOPS).
func RamSan20() Spec {
	return Spec{
		Name:          "TMS RamSan-20 (PCIe-4x)",
		PageSize:      4096,
		PagesPerBlock: 64,
		UserPages:     scaleUserPages,
		SpareFraction: 0.45,
		TRead:         sim.Time(7.0e-6), // ~143K IOPS
		TProg:         sim.Time(6.4e-6), // ~156K IOPS
		TErase:        sim.Time(1.5e-3),
		Channels:      2,
		GCLowWater:    4,
	}
}

// ViridentTachION models the Virident tachION PCIe-8x (1200/1200 MB/s, 156K/118K IOPS).
func ViridentTachION() Spec {
	return Spec{
		Name:          "Virident tachION (PCIe-8x)",
		PageSize:      4096,
		PagesPerBlock: 64,
		UserPages:     scaleUserPages,
		SpareFraction: 0.40,
		TRead:         sim.Time(6.4e-6), // ~156K IOPS
		TProg:         sim.Time(8.5e-6), // ~118K IOPS
		TErase:        sim.Time(1.5e-3),
		Channels:      3,
		GCLowWater:    4,
	}
}

// AllTable1Devices returns the five Table 1 presets in the table's order.
func AllTable1Devices() []Spec {
	return []Spec{IntelX25M(), OCZColossus(), FusionIODuo(), RamSan20(), ViridentTachION()}
}
