package flash

import "repro/internal/obs"

// Observability for the FTL. A Device is a synchronous model (callers
// add its returned latencies to their own sim clocks), so its probes
// are plain counters incremented inline plus gauges evaluated at
// snapshot time. All handles are nil until Instrument is called — the
// uninstrumented hot path pays one branch per probe, preserving the
// package's standalone zero-dependency behaviour.

// Instrument registers the device's FTL probes under the given metric
// prefix (e.g. "flash.dev00"): host page reads/writes, GC invocations,
// page relocations, block erases, and gauges for the pre-erased pool
// depth, write amplification, and peak wear. A no-op on a nil registry.
func (d *Device) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	d.cPageWrites = reg.Counter(prefix + ".page_writes")
	d.cPageReads = reg.Counter(prefix + ".page_reads")
	d.cGC = reg.Counter(prefix + ".gc_collections")
	d.cRelocations = reg.Counter(prefix + ".gc_relocations")
	d.cErases = reg.Counter(prefix + ".erases")
	reg.GaugeFunc(prefix+".pool_depth", func() float64 { return float64(len(d.freeBlocks)) })
	reg.GaugeFunc(prefix+".write_amp", func() float64 { return d.WriteAmplification() })
	reg.GaugeFunc(prefix+".max_wear", func() float64 { return float64(d.MaxWear()) })
}
