// Package cloudfs models the PDSI "parallel file systems for cloud
// computing" study (Figure 12 of the report; Tantisiriroj et al.):
// replacing HDFS under Hadoop with a parallel file system (PVFS) through a
// thin shim. The naive shim made a large text search run more than twice
// as slowly as native Hadoop-on-HDFS; adding HDFS-style client readahead
// to the shim recovered most of the gap; exposing the parallel file
// system's replica layout to the Hadoop scheduler (so map tasks run where
// their data lives) closed it.
//
// The model: W worker nodes double as data nodes. A job is M map tasks,
// each scanning one block. The scheduler assigns tasks to free workers,
// preferring data-local tasks when layout is visible. Local reads stream
// from the node's disk; remote reads cross a shared core switch. Without
// readahead every small request pays a round trip, halving effective
// bandwidth — exactly the shim-tuning story.
package cloudfs

import (
	"fmt"
	"math/rand"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Mode selects the storage stack under Hadoop.
type Mode int

// Stacks compared in Figure 12.
const (
	// HDFSNative: readahead + location-aware scheduling.
	HDFSNative Mode = iota
	// PVFSNaive: small synchronous reads, no layout exposure.
	PVFSNaive
	// PVFSReadahead: shim buffers like HDFS's client, still no layout.
	PVFSReadahead
	// PVFSLayout: readahead + replica locations exposed via extended
	// attributes, enabling local task placement.
	PVFSLayout
)

func (m Mode) String() string {
	switch m {
	case HDFSNative:
		return "hadoop-on-hdfs"
	case PVFSNaive:
		return "pvfs-shim-naive"
	case PVFSReadahead:
		return "pvfs-shim+readahead"
	case PVFSLayout:
		return "pvfs-shim+readahead+layout"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// readahead reports whether the mode buffers large reads.
func (m Mode) readahead() bool { return m != PVFSNaive }

// locationAware reports whether the scheduler can see replica placement.
func (m Mode) locationAware() bool { return m == HDFSNative || m == PVFSLayout }

// Params describes the cluster and job.
type Params struct {
	Workers   int
	Tasks     int
	BlockSize int64
	Replicas  int
	// CoreBandwidth is the shared switch capacity for remote reads.
	CoreBandwidth float64
	// NodeBandwidth is a node's NIC speed.
	NodeBandwidth float64
	// SmallRead is the request size without readahead; RPC its round trip.
	SmallRead int64
	RPC       sim.Time
	// CPUPerBlock is the map function's compute time per block.
	CPUPerBlock sim.Time
	Seed        int64
}

// DefaultParams models the M45-style cluster of the study.
func DefaultParams(workers, tasks int) Params {
	return Params{
		Workers:       workers,
		Tasks:         tasks,
		BlockSize:     64 << 20,
		Replicas:      3,
		CoreBandwidth: 6e9 / 8, // oversubscribed shared core
		NodeBandwidth: 1e9 / 8,
		SmallRead:     32 << 10,
		RPC:           sim.Time(800e-6),
		CPUPerBlock:   sim.Time(200e-3),
		Seed:          7,
	}
}

// Result reports one job execution.
type Result struct {
	Mode        Mode
	Elapsed     sim.Time
	Throughput  float64 // bytes/second scanned
	LocalReads  int
	RemoteReads int
}

// Run executes the map phase under the given mode.
func Run(p Params, mode Mode) Result {
	if p.Workers < 1 || p.Tasks < 1 || p.Replicas < 1 {
		panic(fmt.Sprintf("cloudfs: invalid params %+v", p))
	}
	r := rand.New(rand.NewSource(p.Seed))
	eng := sim.NewEngine()

	// Replica placement: block b on Replicas distinct nodes.
	replicas := make([][]int, p.Tasks)
	for b := range replicas {
		perm := r.Perm(p.Workers)
		n := p.Replicas
		if n > p.Workers {
			n = p.Workers
		}
		replicas[b] = perm[:n]
	}

	dsk := disk.Enterprise2006()
	localRead := sim.Time(float64(p.BlockSize) / dsk.SeqBandwidth)

	core := sim.NewServer(eng, 1) // shared core switch
	var res Result
	res.Mode = mode

	// Task queue and per-worker state.
	pendingTasks := make([]int, p.Tasks)
	for i := range pendingTasks {
		pendingTasks[i] = i
	}
	taken := make([]bool, p.Tasks)
	remaining := p.Tasks

	isLocal := func(task, worker int) bool {
		for _, n := range replicas[task] {
			if n == worker {
				return true
			}
		}
		return false
	}

	// pick selects the next task for a worker under the scheduling policy.
	pick := func(worker int) int {
		if mode.locationAware() {
			for _, t := range pendingTasks {
				if !taken[t] && isLocal(t, worker) {
					return t
				}
			}
		}
		for _, t := range pendingTasks {
			if !taken[t] {
				return t
			}
		}
		return -1
	}

	var schedule func(worker int)
	runTask := func(worker, task int, after func()) {
		local := isLocal(task, worker)
		if local {
			res.LocalReads++
		} else {
			res.RemoteReads++
		}
		finishCompute := func() { eng.Schedule(p.CPUPerBlock, after) }
		if local {
			readT := localRead
			if !mode.readahead() {
				// Small synchronous reads against the local server still
				// pay per-request overhead through the shim.
				nReq := p.BlockSize / p.SmallRead
				readT += sim.Time(nReq) * p.RPC
			}
			eng.Schedule(readT, finishCompute)
			return
		}
		// Remote: stream through the shared core.
		if mode.readahead() {
			xfer := sim.Time(float64(p.BlockSize) / p.NodeBandwidth)
			core.Submit(sim.Time(float64(p.BlockSize)/p.CoreBandwidth), func(sim.Time) {
				eng.Schedule(xfer, finishCompute)
			})
			return
		}
		// Naive shim: each small request is a synchronous round trip, so
		// the stream never fills the pipe.
		nReq := p.BlockSize / p.SmallRead
		var step func(k int64)
		step = func(k int64) {
			if k == nReq {
				finishCompute()
				return
			}
			core.Submit(sim.Time(float64(p.SmallRead)/p.CoreBandwidth), func(sim.Time) {
				eng.Schedule(p.RPC+sim.Time(float64(p.SmallRead)/p.NodeBandwidth), func() { step(k + 1) })
			})
		}
		step(0)
	}

	schedule = func(worker int) {
		t := pick(worker)
		if t < 0 {
			return
		}
		taken[t] = true
		runTask(worker, t, func() {
			remaining--
			schedule(worker)
		})
	}
	for w := 0; w < p.Workers; w++ {
		schedule(w)
	}
	eng.Run()
	if remaining != 0 {
		panic(fmt.Sprintf("cloudfs: %d tasks never ran", remaining))
	}
	res.Elapsed = eng.Now()
	if res.Elapsed > 0 {
		res.Throughput = float64(p.Tasks) * float64(p.BlockSize) / float64(res.Elapsed)
	}
	return res
}

// Compare runs all four stacks and returns results in mode order.
func Compare(p Params) []Result {
	out := make([]Result, 0, 4)
	for _, m := range []Mode{HDFSNative, PVFSNaive, PVFSReadahead, PVFSLayout} {
		out = append(out, Run(p, m))
	}
	return out
}
