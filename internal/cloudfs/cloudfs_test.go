package cloudfs

import (
	"testing"
)

func params() Params {
	p := DefaultParams(16, 64)
	return p
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		HDFSNative:    "hadoop-on-hdfs",
		PVFSNaive:     "pvfs-shim-naive",
		PVFSReadahead: "pvfs-shim+readahead",
		PVFSLayout:    "pvfs-shim+readahead+layout",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestAllTasksComplete(t *testing.T) {
	for _, m := range []Mode{HDFSNative, PVFSNaive, PVFSReadahead, PVFSLayout} {
		r := Run(params(), m)
		if r.LocalReads+r.RemoteReads != 64 {
			t.Fatalf("%v: %d+%d reads, want 64 tasks", m, r.LocalReads, r.RemoteReads)
		}
		if r.Elapsed <= 0 || r.Throughput <= 0 {
			t.Fatalf("%v: empty result %+v", m, r)
		}
	}
}

func TestHDFSMostlyLocal(t *testing.T) {
	r := Run(params(), HDFSNative)
	if r.LocalReads < r.RemoteReads {
		t.Fatalf("HDFS ran %d local vs %d remote, want mostly local", r.LocalReads, r.RemoteReads)
	}
}

func TestNaiveShimTwiceAsSlow(t *testing.T) {
	// Figure 12's headline: "the simplest shim caused Hadoop-on-PVFS to
	// execute a large text search more than twice as slowly".
	hdfs := Run(params(), HDFSNative)
	naive := Run(params(), PVFSNaive)
	if naive.Elapsed < 2*hdfs.Elapsed {
		t.Fatalf("naive shim %.2fs, want >= 2x HDFS %.2fs",
			float64(naive.Elapsed), float64(hdfs.Elapsed))
	}
}

func TestReadaheadClosesMostOfGap(t *testing.T) {
	naive := Run(params(), PVFSNaive)
	ra := Run(params(), PVFSReadahead)
	if ra.Elapsed >= naive.Elapsed {
		t.Fatal("readahead did not help")
	}
	if ra.Throughput < 1.5*naive.Throughput {
		t.Fatalf("readahead gain %.1fx, want a large improvement",
			ra.Throughput/naive.Throughput)
	}
}

func TestLayoutExposureReachesParity(t *testing.T) {
	// "The result is that PVFS, with our shim, could be used as an
	// alternative to HDFS": layout-aware shim within ~20% of native.
	hdfs := Run(params(), HDFSNative)
	layout := Run(params(), PVFSLayout)
	ratio := float64(layout.Elapsed) / float64(hdfs.Elapsed)
	if ratio > 1.25 {
		t.Fatalf("layout-aware shim at %.2fx of HDFS time, want parity (<= 1.25x)", ratio)
	}
}

func TestOrderingOfVariants(t *testing.T) {
	rs := Compare(params())
	byMode := map[Mode]Result{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	if !(byMode[PVFSNaive].Elapsed > byMode[PVFSReadahead].Elapsed &&
		byMode[PVFSReadahead].Elapsed >= byMode[PVFSLayout].Elapsed) {
		t.Fatalf("variant ordering wrong: naive=%v ra=%v layout=%v",
			byMode[PVFSNaive].Elapsed, byMode[PVFSReadahead].Elapsed, byMode[PVFSLayout].Elapsed)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Run(params(), PVFSLayout), Run(params(), PVFSLayout)
	if a.Elapsed != b.Elapsed || a.LocalReads != b.LocalReads {
		t.Fatal("non-deterministic")
	}
}

func TestInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	Run(Params{}, HDFSNative)
}
