// Package prefetch implements the ORNL close-out work on Global
// Multi-order Context-based (GMC) prefetching (§5.4.2 of the report;
// Chen, Zhu, Jin & Sun, P2S2'10): predicting a process's next block
// accesses from variable-length access contexts. A single-order
// (Markov-1) predictor misses patterns that only longer histories
// disambiguate — interleaved strided streams, nested loops — so GMC keeps
// context tables of several orders and predicts from the longest matching
// context, increasing prefetching *coverage* while maintaining *accuracy*.
package prefetch

import (
	"fmt"
)

// Predictor is a multi-order context model over block ids. Order k maps
// each observed k-gram of accesses to a frequency table of successors.
type Predictor struct {
	maxOrder int
	// tables[k] maps a context key of length k+1 to successor counts.
	tables []map[string]map[int64]int
	// history holds the most recent accesses, newest last.
	history []int64

	Predictions  int64 // times a prediction was made
	Hits         int64 // predictions matching the next access
	Misses       int64 // predictions that were wrong
	NoPrediction int64 // accesses where no context matched
}

// New returns a predictor using contexts of length 1..maxOrder.
func New(maxOrder int) *Predictor {
	if maxOrder < 1 {
		panic(fmt.Sprintf("prefetch: maxOrder %d < 1", maxOrder))
	}
	p := &Predictor{maxOrder: maxOrder}
	p.tables = make([]map[string]map[int64]int, maxOrder)
	for k := range p.tables {
		p.tables[k] = make(map[string]map[int64]int)
	}
	return p
}

// key encodes a context window compactly.
func key(window []int64) string {
	b := make([]byte, 0, len(window)*9)
	for _, v := range window {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
		b = append(b, ':')
	}
	return string(b)
}

// Predict returns the predicted next block and true, or 0 and false when
// no context of any order has been seen. The longest matching context
// wins; ties within a table break toward the most frequent successor,
// then the smallest block id (deterministic).
func (p *Predictor) Predict() (int64, bool) {
	for k := min(p.maxOrder, len(p.history)); k >= 1; k-- {
		ctx := key(p.history[len(p.history)-k:])
		succ, ok := p.tables[k-1][ctx]
		if !ok || len(succ) == 0 {
			continue
		}
		var best int64
		bestCount := -1
		for blk, count := range succ {
			if count > bestCount || (count == bestCount && blk < best) {
				best, bestCount = blk, count
			}
		}
		return best, true
	}
	return 0, false
}

// Observe records an access, scoring any outstanding prediction first and
// updating every order's context table.
func (p *Predictor) Observe(block int64) {
	if pred, ok := p.Predict(); ok {
		p.Predictions++
		if pred == block {
			p.Hits++
		} else {
			p.Misses++
		}
	} else if len(p.history) > 0 {
		p.NoPrediction++
	}
	// Update tables for each context length ending at the previous access.
	for k := 1; k <= min(p.maxOrder, len(p.history)); k++ {
		ctx := key(p.history[len(p.history)-k:])
		succ := p.tables[k-1][ctx]
		if succ == nil {
			succ = make(map[int64]int)
			p.tables[k-1][ctx] = succ
		}
		succ[block]++
	}
	p.history = append(p.history, block)
	if len(p.history) > p.maxOrder {
		p.history = p.history[len(p.history)-p.maxOrder:]
	}
}

// Accuracy is hits / predictions; Coverage is hits / all accesses that had
// a predecessor (the fraction of I/Os a prefetcher would have hidden).
func (p *Predictor) Accuracy() float64 {
	if p.Predictions == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Predictions)
}

// Coverage returns the fraction of predictable accesses that were hit.
func (p *Predictor) Coverage() float64 {
	total := p.Predictions + p.NoPrediction
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Metrics evaluates a predictor over a block stream.
type Metrics struct {
	Order    int
	Accuracy float64
	Coverage float64
}

// Evaluate replays the stream through a fresh predictor of the given order.
func Evaluate(stream []int64, order int) Metrics {
	p := New(order)
	for _, b := range stream {
		p.Observe(b)
	}
	return Metrics{Order: order, Accuracy: p.Accuracy(), Coverage: p.Coverage()}
}

// MixedPhases builds the access stream that defeats order-1 prediction:
// the same block region is read in alternating phases with different
// orders — a sequential pass, then a strided pass — repeated `passes`
// times (a timestep loop whose analysis re-reads its dump differently).
// After block 0 the successor is 1 in a sequential phase but `stride` in
// a strided phase; only a longer context disambiguates which phase is
// running.
func MixedPhases(blocks int, stride int, passes int) []int64 {
	var out []int64
	for p := 0; p < passes; p++ {
		// Sequential phase.
		for i := 0; i < blocks; i++ {
			out = append(out, int64(i))
		}
		// Strided phase touching the same blocks in permuted order.
		for lane := 0; lane < stride; lane++ {
			for i := lane; i < blocks; i += stride {
				out = append(out, int64(i))
			}
		}
	}
	return out
}

// NestedLoop builds a stream of an outer loop re-reading an inner block
// sequence (e.g. per-timestep analysis passes over the same file region).
func NestedLoop(outer, inner int) []int64 {
	out := make([]int64, 0, outer*inner)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			out = append(out, int64(i))
		}
	}
	return out
}
