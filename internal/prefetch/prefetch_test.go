package prefetch

import (
	"testing"
)

func TestInvalidOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order 0 did not panic")
		}
	}()
	New(0)
}

func TestNoPredictionOnColdStart(t *testing.T) {
	p := New(2)
	if _, ok := p.Predict(); ok {
		t.Fatal("cold predictor should not predict")
	}
	p.Observe(1)
	if _, ok := p.Predict(); ok {
		t.Fatal("single access gives no context successor yet")
	}
}

func TestSequentialStreamLearned(t *testing.T) {
	m := Evaluate(NestedLoop(10, 100), 1)
	// After the first pass the order-1 model knows i -> i+1 (and the wrap).
	if m.Accuracy < 0.85 {
		t.Fatalf("order-1 accuracy on nested loop = %v, want high", m.Accuracy)
	}
	if m.Coverage < 0.85 {
		t.Fatalf("order-1 coverage = %v, want high", m.Coverage)
	}
}

func TestMixedPhasesDefeatOrderOne(t *testing.T) {
	stream := MixedPhases(64, 4, 12)
	m1 := Evaluate(stream, 1)
	// Order-1 sees two successors for most blocks: accuracy capped well
	// below 1.
	if m1.Accuracy > 0.8 {
		t.Fatalf("order-1 accuracy on mixed phases = %v, expected ambiguity", m1.Accuracy)
	}
}

func TestGMCBeatsOrderOne(t *testing.T) {
	// The GMC result: multi-order context raises coverage and accuracy on
	// phase-mixed workloads.
	stream := MixedPhases(64, 4, 12)
	m1 := Evaluate(stream, 1)
	m3 := Evaluate(stream, 3)
	if m3.Accuracy <= m1.Accuracy {
		t.Fatalf("order-3 accuracy %v should beat order-1 %v", m3.Accuracy, m1.Accuracy)
	}
	if m3.Coverage <= m1.Coverage {
		t.Fatalf("order-3 coverage %v should beat order-1 %v", m3.Coverage, m1.Coverage)
	}
	// The paper's benefit bar: >= 24% improvement in effective hits.
	if m3.Coverage < m1.Coverage*1.24 {
		t.Fatalf("GMC coverage gain %.2fx, want >= 1.24x", m3.Coverage/m1.Coverage)
	}
}

func TestHigherOrderNotWorseOnSequential(t *testing.T) {
	stream := NestedLoop(10, 100)
	m1 := Evaluate(stream, 1)
	m3 := Evaluate(stream, 3)
	if m3.Accuracy < m1.Accuracy*0.95 {
		t.Fatalf("order-3 accuracy %v regressed vs order-1 %v on sequential", m3.Accuracy, m1.Accuracy)
	}
}

func TestPredictDeterministicTieBreak(t *testing.T) {
	p := New(1)
	// Context 5 -> successors 7 and 3 with equal counts: smaller id wins.
	p.Observe(5)
	p.Observe(7)
	p.Observe(5)
	p.Observe(3)
	p.Observe(5)
	pred, ok := p.Predict()
	if !ok || pred != 3 {
		t.Fatalf("tie break prediction = (%d, %v), want (3, true)", pred, ok)
	}
}

func TestCountersConsistent(t *testing.T) {
	p := New(2)
	stream := NestedLoop(5, 20)
	for _, b := range stream {
		p.Observe(b)
	}
	if p.Hits+p.Misses != p.Predictions {
		t.Fatalf("hits %d + misses %d != predictions %d", p.Hits, p.Misses, p.Predictions)
	}
	if p.Predictions+p.NoPrediction != int64(len(stream)-1) {
		t.Fatalf("predictions %d + none %d != accesses-1 %d",
			p.Predictions, p.NoPrediction, len(stream)-1)
	}
}

func TestMixedPhasesCoverAllBlocks(t *testing.T) {
	stream := MixedPhases(16, 4, 1)
	seen := map[int64]int{}
	for _, b := range stream {
		seen[b]++
	}
	if len(seen) != 16 {
		t.Fatalf("stream touches %d blocks, want 16", len(seen))
	}
	for b, n := range seen {
		if n != 2 { // once sequential, once strided
			t.Fatalf("block %d touched %d times, want 2", b, n)
		}
	}
}
