package scalatrace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ev(op string) Event { return Event{Op: op, File: 1, Delta: 4096, Size: 4096} }

func TestEmptyTrace(t *testing.T) {
	tr := Compress(nil, 0)
	if tr.Len() != 0 || tr.TermCount() != 0 {
		t.Fatalf("empty trace: %+v", tr)
	}
	if got := tr.CompressionRatio(); got != 1 {
		t.Fatalf("empty ratio = %v", got)
	}
	if out := tr.Expand(); len(out) != 0 {
		t.Fatalf("expand = %v", out)
	}
}

func TestSimpleRepetitionFolds(t *testing.T) {
	var events []Event
	for i := 0; i < 1000; i++ {
		events = append(events, ev("write"))
	}
	tr := Compress(events, 64)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// A x1000 should compress to very few terms (nested doubling groups).
	if tr.TermCount() > 30 {
		t.Fatalf("TermCount = %d for 1000 identical events, want tiny", tr.TermCount())
	}
	if tr.CompressionRatio() < 30 {
		t.Fatalf("ratio = %v, want large", tr.CompressionRatio())
	}
}

func TestLoopBodyFolds(t *testing.T) {
	// A timestep loop: (open write write close) x 500.
	var events []Event
	for i := 0; i < 500; i++ {
		events = append(events,
			ev("open"), ev("write"), ev("write"), ev("close"))
	}
	tr := Compress(events, 64)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.TermCount() > 40 {
		t.Fatalf("TermCount = %d for a 4-event loop x500", tr.TermCount())
	}
	out := tr.Expand()
	if len(out) != len(events) {
		t.Fatalf("expand length %d, want %d", len(out), len(events))
	}
	for i := range out {
		if out[i] != events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, out[i], events[i])
		}
	}
}

func TestCompressedSizeGrowsWithStructureNotLength(t *testing.T) {
	// The ScalaTrace property: doubling the iteration count must not
	// double the trace size.
	loop := []Event{ev("open"), ev("write"), ev("close")}
	build := func(iters int) []Event {
		var out []Event
		for i := 0; i < iters; i++ {
			out = append(out, loop...)
		}
		return out
	}
	small := Compress(build(100), 64).TermCount()
	large := Compress(build(10000), 64).TermCount()
	if large > small*4 {
		t.Fatalf("100x more iterations grew terms %d -> %d; want sublinear", small, large)
	}
}

func TestExpandRoundTripProperty(t *testing.T) {
	ops := []string{"open", "read", "write", "close"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var events []Event
		// Random stream with embedded repetition.
		for len(events) < int(n)+1 {
			if r.Intn(2) == 0 {
				// Literal burst.
				events = append(events, ev(ops[r.Intn(len(ops))]))
				continue
			}
			// Repeated block.
			blockLen := r.Intn(3) + 1
			reps := r.Intn(5) + 1
			var block []Event
			for i := 0; i < blockLen; i++ {
				block = append(block, ev(ops[r.Intn(len(ops))]))
			}
			for i := 0; i < reps; i++ {
				events = append(events, block...)
			}
		}
		tr := Compress(events, 32)
		if tr.Len() != len(events) {
			return false
		}
		out := tr.Expand()
		if len(out) != len(events) {
			return false
		}
		for i := range out {
			if out[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMatchesExpand(t *testing.T) {
	var events []Event
	for i := 0; i < 100; i++ {
		events = append(events, ev("write"), ev("read"))
	}
	tr := Compress(events, 32)
	var replayed []Event
	tr.Replay(func(e Event) { replayed = append(replayed, e) })
	expanded := tr.Expand()
	if len(replayed) != len(expanded) {
		t.Fatalf("replay %d vs expand %d", len(replayed), len(expanded))
	}
	for i := range replayed {
		if replayed[i] != expanded[i] {
			t.Fatal("replay diverges from expand")
		}
	}
}

func TestDistinctEventsDoNotFold(t *testing.T) {
	// Events differing in any field are different loop bodies.
	a := Event{Op: "write", File: 1, Delta: 0, Size: 4096}
	b := Event{Op: "write", File: 1, Delta: 0, Size: 8192}
	tr := Compress([]Event{a, b, a, b, a, b}, 32)
	// (a b)x3 is the right folding — but a and b must stay distinct events.
	out := tr.Expand()
	for i, e := range out {
		want := a
		if i%2 == 1 {
			want = b
		}
		if e != want {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
	}
	if tr.TermCount() > 3 {
		t.Fatalf("TermCount = %d, want (a b)x3 folded", tr.TermCount())
	}
}

func TestStringRendering(t *testing.T) {
	tr := Compress([]Event{ev("open"), ev("write"), ev("write"), ev("close")}, 32)
	s := tr.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	// "open (write)x2 close" is the expected shape.
	if want := "open (write)x2 close"; s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}

func TestWindowBoundsRespected(t *testing.T) {
	// A loop body longer than the window cannot fold; correctness must
	// hold anyway.
	var block []Event
	for i := 0; i < 8; i++ {
		block = append(block, Event{Op: "write", File: int32(i), Size: 1})
	}
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, block...)
	}
	tr := Compress(events, 4) // window smaller than the 8-event body
	out := tr.Expand()
	if len(out) != len(events) {
		t.Fatalf("expand %d, want %d", len(out), len(events))
	}
	for i := range out {
		if out[i] != events[i] {
			t.Fatal("round trip broken under small window")
		}
	}
}
