// Package scalatrace reimplements the heart of the ORNL/NCSU scalable
// event tracing work the report describes (§5.4.2): ScalaTrace-style
// lossless compression of I/O event streams. Parallel applications emit
// highly repetitive event sequences — a timestep loop issues the same
// write pattern thousands of times — so instead of storing every event,
// the compressor recognizes repeating patterns and stores the pattern once
// with a repetition count (run-length encoding over a grammar of event
// signatures). Trace size then grows with the *structure* of the program,
// not its running time, which is what made tracing at scale feasible.
//
// The implementation compresses a stream of Events into a sequence of
// Terms, where a Term is either a literal event or a repeated group, found
// greedily by searching for the longest immediately-repeating suffix (a
// simplified loop-detection pass applied online, as ScalaTrace does
// intra-node before its cross-node merge).
package scalatrace

import (
	"fmt"
	"strings"
)

// Event is one traced I/O operation signature. Offsets are stored as
// deltas by callers who want loop bodies to match (ScalaTrace's
// "location-independent" encoding); the compressor itself just compares
// events for equality.
type Event struct {
	Op    string // "write", "read", "open", ...
	File  int32  // file handle id
	Delta int64  // offset delta from the previous op on this handle
	Size  int64
}

// Term is a node of the compressed stream: either a single literal Event
// (Count == 1, no Body) or a repeated group Body occurring Count times.
type Term struct {
	Event Event  // valid when Body is empty
	Body  []Term // non-empty for groups
	Count int
}

// isGroup reports whether the term is a repeated group.
func (t Term) isGroup() bool { return len(t.Body) > 0 }

// Trace is a compressed event stream.
type Trace struct {
	Terms []Term
	n     int // uncompressed length
}

// Len returns the number of uncompressed events represented.
func (tr *Trace) Len() int { return tr.n }

// TermCount returns the number of stored terms (compressed size metric,
// counting nested terms).
func (tr *Trace) TermCount() int {
	var count func(ts []Term) int
	count = func(ts []Term) int {
		n := 0
		for _, t := range ts {
			n++
			n += count(t.Body)
		}
		return n
	}
	return count(tr.Terms)
}

// CompressionRatio is uncompressed events per stored term.
func (tr *Trace) CompressionRatio() float64 {
	tc := tr.TermCount()
	if tc == 0 {
		return 1
	}
	return float64(tr.n) / float64(tc)
}

// Compressor builds a Trace online, one event at a time.
type Compressor struct {
	tr Trace
	// window bounds how far back the suffix search looks, keeping Append
	// amortized-cheap for long streams.
	window int
}

// NewCompressor returns a compressor with the given loop-search window
// (maximum loop body length in terms; ScalaTrace bounds this similarly).
func NewCompressor(window int) *Compressor {
	if window < 1 {
		window = 64
	}
	return &Compressor{window: window}
}

// termsEqual compares two terms structurally.
func termsEqual(a, b Term) bool {
	if a.isGroup() != b.isGroup() || a.Count != b.Count {
		return false
	}
	if !a.isGroup() {
		return a.Event == b.Event
	}
	if len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Body {
		if !termsEqual(a.Body[i], b.Body[i]) {
			return false
		}
	}
	return true
}

// Append adds one event and opportunistically folds repeats.
func (c *Compressor) Append(e Event) {
	c.tr.Terms = append(c.tr.Terms, Term{Event: e, Count: 1})
	c.tr.n++
	c.fold()
}

// fold looks for an immediately repeating suffix of length L (in terms)
// and merges it: ... X Y X Y -> ... (X Y)x2; an existing group followed by
// another occurrence of its body increments its count.
func (c *Compressor) fold() {
	for {
		terms := c.tr.Terms
		n := len(terms)
		folded := false
		maxL := c.window
		if maxL > n-1 {
			maxL = n - 1
		}
		for l := 1; l <= maxL; l++ {
			// Case 1: the l terms before the suffix form a group whose
			// body equals the suffix: increment its count.
			if l <= n-1 {
				g := terms[n-l-1]
				if g.isGroup() && len(g.Body) == l && bodyMatches(g.Body, terms[n-l:]) {
					g.Count++
					c.tr.Terms = append(terms[:n-l-1], g)
					folded = true
					break
				}
			}
			// Case 2: two adjacent identical runs of length l: fold into a
			// group with count 2.
			if 2*l <= n && runsEqual(terms[n-2*l:n-l], terms[n-l:]) {
				body := append([]Term(nil), terms[n-2*l:n-l]...)
				g := Term{Body: body, Count: 2}
				c.tr.Terms = append(terms[:n-2*l], g)
				folded = true
				break
			}
		}
		if !folded {
			return
		}
	}
}

// bodyMatches reports whether suffix terms equal the group body (literal
// terms only need event equality with count 1).
func bodyMatches(body, suffix []Term) bool {
	if len(body) != len(suffix) {
		return false
	}
	for i := range body {
		if !termsEqual(body[i], suffix[i]) {
			return false
		}
	}
	return true
}

func runsEqual(a, b []Term) bool { return bodyMatches(a, b) }

// Trace returns the compressed trace built so far.
func (c *Compressor) Trace() *Trace { return &c.tr }

// Expand replays the trace back into the full event stream (the "replay
// mechanism" the ORNL team extended with user-defined actions).
func (tr *Trace) Expand() []Event {
	out := make([]Event, 0, tr.n)
	var walk func(ts []Term)
	walk = func(ts []Term) {
		for _, t := range ts {
			if t.isGroup() {
				for i := 0; i < t.Count; i++ {
					walk(t.Body)
				}
				continue
			}
			for i := 0; i < t.Count; i++ {
				out = append(out, t.Event)
			}
		}
	}
	walk(tr.Terms)
	return out
}

// Replay invokes fn for every uncompressed event without materializing the
// stream.
func (tr *Trace) Replay(fn func(Event)) {
	var walk func(ts []Term)
	walk = func(ts []Term) {
		for _, t := range ts {
			if t.isGroup() {
				for i := 0; i < t.Count; i++ {
					walk(t.Body)
				}
				continue
			}
			for i := 0; i < t.Count; i++ {
				fn(t.Event)
			}
		}
	}
	walk(tr.Terms)
}

// String renders the structure compactly, e.g. "(write read)x1000 close".
func (tr *Trace) String() string {
	var b strings.Builder
	var walk func(ts []Term)
	walk = func(ts []Term) {
		for i, t := range ts {
			if i > 0 {
				b.WriteByte(' ')
			}
			if t.isGroup() {
				b.WriteByte('(')
				walk(t.Body)
				fmt.Fprintf(&b, ")x%d", t.Count)
				continue
			}
			b.WriteString(t.Event.Op)
		}
	}
	walk(tr.Terms)
	return b.String()
}

// Compress is the convenience one-shot API.
func Compress(events []Event, window int) *Trace {
	c := NewCompressor(window)
	for _, e := range events {
		c.Append(e)
	}
	return c.Trace()
}
