package repro

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
	"repro/plfs"

	"repro/internal/pfs"
)

// TestIntegrationPLFSRoundTripWithTrace drives the checkpoint pattern
// through the real PLFS library while recording a trace, verifies the
// trace classifies as the N-1 strided pattern PLFS targets, and checks
// the logical contents byte for byte.
func TestIntegrationPLFSRoundTripWithTrace(t *testing.T) {
	const (
		ranks   = 8
		records = 12
		recSize = int64(1000)
	)
	backend := plfs.NewMemBackend()
	c, err := plfs.CreateContainer(backend, "/ckpt", plfs.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	var traceMu sync.Mutex

	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := c.OpenWriter(int32(rank))
			if err != nil {
				t.Error(err)
				return
			}
			defer w.Close()
			payload := bytes.Repeat([]byte{byte(rank + 1)}, int(recSize))
			for i := 0; i < records; i++ {
				off := (int64(i)*ranks + int64(rank)) * recSize
				if _, err := w.WriteAt(payload, off); err != nil {
					t.Error(err)
					return
				}
				traceMu.Lock()
				tr.Add(trace.Record{
					Rank: int32(rank), Offset: off, Length: recSize,
					Start: float64(i), End: float64(i) + 0.5,
				})
				traceMu.Unlock()
			}
		}()
	}
	wg.Wait()

	if got := trace.Classify(tr); got != trace.N1StridedPattern {
		t.Fatalf("trace classified as %v, want N-1 strided", got)
	}

	r, err := c.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := int64(ranks*records) * recSize
	if r.Size() != want {
		t.Fatalf("logical size %d, want %d", r.Size(), want)
	}
	buf := make([]byte, want)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for rec := int64(0); rec < int64(ranks*records); rec++ {
		wantByte := byte(rec%ranks) + 1
		if buf[rec*recSize] != wantByte || buf[(rec+1)*recSize-1] != wantByte {
			t.Fatalf("record %d corrupted", rec)
		}
	}

	// The raw index should carry one entry per write; coalescing the
	// merged index cannot change the contents.
	g := r.Index()
	if g.NumEntries() != ranks*records {
		t.Fatalf("index entries = %d, want %d", g.NumEntries(), ranks*records)
	}
	g.Coalesce()
	buf2 := make([]byte, want)
	if _, err := r.ReadAt(buf2, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("coalescing changed logical contents")
	}
}

// TestIntegrationMountMatchesContainerSemantics writes the same workload
// through the Mount facade and directly through Container, and demands
// identical logical bytes.
func TestIntegrationMountMatchesContainerSemantics(t *testing.T) {
	write := func(writeAt func(rank int) func([]byte, int64) (int, error)) []byte {
		const ranks, recs, recSize = 4, 6, 128
		for rank := 0; rank < ranks; rank++ {
			w := writeAt(rank)
			payload := bytes.Repeat([]byte{byte('A' + rank)}, recSize)
			for i := 0; i < recs; i++ {
				off := int64((i*ranks + rank) * recSize)
				if _, err := w(payload, off); err != nil {
					t.Fatal(err)
				}
			}
		}
		return nil
	}

	// Path 1: Container API.
	b1 := plfs.NewMemBackend()
	c1, _ := plfs.CreateContainer(b1, "/f", plfs.DefaultOptions())
	writers := map[int]*plfs.Writer{}
	write(func(rank int) func([]byte, int64) (int, error) {
		w, err := c1.OpenWriter(int32(rank))
		if err != nil {
			t.Fatal(err)
		}
		writers[rank] = w
		return w.WriteAt
	})
	for _, w := range writers {
		w.Close()
	}
	r1, _ := c1.OpenReader()
	defer r1.Close()
	buf1 := make([]byte, r1.Size())
	if _, err := r1.ReadAt(buf1, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}

	// Path 2: Mount API.
	b2 := plfs.NewMemBackend()
	m, _ := plfs.NewMount(b2, "/mnt", plfs.DefaultOptions())
	files := map[int]*plfs.LogicalFile{}
	write(func(rank int) func([]byte, int64) (int, error) {
		f, err := m.OpenFile("f", int32(rank), true)
		if err != nil {
			t.Fatal(err)
		}
		files[rank] = f
		return f.WriteAt
	})
	for _, f := range files {
		f.Sync()
	}
	reader, err := m.OpenFile("f", 99, false)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	size, _ := reader.Size()
	buf2 := make([]byte, size)
	if _, err := reader.ReadAt(buf2, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for _, f := range files {
		f.Close()
	}

	if !bytes.Equal(buf1, buf2) {
		t.Fatal("Mount and Container produced different logical files")
	}
}

// TestIntegrationSimulatedAndLibraryAgree sanity-checks that the
// performance model's story matches the functional library's mechanics:
// the pattern the simulator says is pathological (N-1 strided) is exactly
// the one the library converts to per-writer appends, observable as
// purely sequential per-writer log offsets.
func TestIntegrationSimulatedAndLibraryAgree(t *testing.T) {
	// Simulator side: strided much slower than PLFS on every preset.
	for _, cfg := range pfs.AllPresets(4) {
		_, _, ratio := workload.Speedup(cfg, 8, 1<<20, 47008)
		if ratio <= 1 {
			t.Fatalf("%s: simulator says PLFS does not help (%.2fx)", cfg.Name, ratio)
		}
	}

	// Library side: a writer's index entries advance strictly
	// sequentially in its log regardless of logical offsets.
	backend := plfs.NewMemBackend()
	c, _ := plfs.CreateContainer(backend, "/f", plfs.DefaultOptions())
	w, _ := c.OpenWriter(0)
	offsets := []int64{99999, 0, 47008, 500000, 123}
	for _, off := range offsets {
		if _, err := w.WriteAt(make([]byte, 100), off); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, _ := c.OpenReader()
	defer r.Close()
	pieces := r.Index().Lookup(0, r.Size())
	// Collect the writer-log offsets of the written ranges; they must be
	// append-ordered when sorted by timestamp — equivalently, each logical
	// write of 100 bytes occupies a distinct, non-overlapping 100-byte log
	// extent.
	seen := map[int64]bool{}
	for _, p := range pieces {
		if p.Writer < 0 {
			continue
		}
		if p.LogOff%100 != 0 {
			// Overlap splits can shift log offsets; just require bounds.
			if p.LogOff < 0 || p.LogOff >= int64(len(offsets)*100) {
				t.Fatalf("log offset %d out of the append range", p.LogOff)
			}
			continue
		}
		seen[p.LogOff] = true
	}
	if len(seen) == 0 {
		t.Fatal("no log extents resolved")
	}
}
