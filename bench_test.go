// Package repro's root benchmark harness: one benchmark per table and
// figure of the PDSI final report (see DESIGN.md's experiment index), plus
// ablation benches for the design choices the substrates expose. Each
// bench reports the figure's headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/argon"
	"repro/internal/cloudfs"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/failure"
	"repro/internal/flash"
	"repro/internal/fsstats"
	"repro/internal/fsva"
	"repro/internal/giga"
	"repro/internal/hdf5sim"
	"repro/internal/incast"
	"repro/internal/mdindex"
	"repro/internal/pfs"
	"repro/internal/placement"
	"repro/internal/pnfs"
	"repro/internal/posixext"
	"repro/internal/sim"
	"repro/internal/tape"
	"repro/internal/workload"
)

// BenchmarkFig2S3DWeakScaling regenerates Figure 2: S3D checkpoint time
// under weak scaling, and the predicted 12-hour I/O fraction.
func BenchmarkFig2S3DWeakScaling(b *testing.B) {
	for _, ranks := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var last workload.S3DPoint
			for i := 0; i < b.N; i++ {
				pts := workload.S3DWeakScaling(pfs.PanFSLike(8), workload.DefaultS3D(), []int{ranks})
				last = pts[0]
			}
			b.ReportMetric(float64(last.CheckpointTime), "ckpt-sec")
			b.ReportMetric(last.Predicted12hFraction*100, "12h-io-%")
		})
	}
}

// BenchmarkFig3FsstatsCDF regenerates Figure 3: file size CDFs over the
// eleven synthetic survey populations.
func BenchmarkFig3FsstatsCDF(b *testing.B) {
	specs := fsstats.ElevenSystems(20000)
	var median float64
	for i := 0; i < b.N; i++ {
		for j, spec := range specs {
			rep := fsstats.Survey(spec.Name, fsstats.Generate(spec, int64(j)))
			median = rep.MedianSize
		}
	}
	b.ReportMetric(median, "median-bytes")
}

// BenchmarkFig4MTTI regenerates Figure 4: the linear interrupts-vs-chips
// fit over a synthetic LANL-style fleet and the MTTI projection.
func BenchmarkFig4MTTI(b *testing.B) {
	var r2, mtti2018 float64
	for i := 0; i < b.N; i++ {
		specs := failure.LANLStyleFleet(22, 0.25, 0.8, 11)
		var sys []failure.SystemStats
		for j, spec := range specs {
			sys = append(sys, failure.Analyze(spec, failure.GenerateTrace(spec, 9, int64(100+j)), 9))
		}
		fit, err := failure.FitInterruptsVsChips(sys)
		if err != nil {
			b.Fatal(err)
		}
		r2 = fit.R2
		mtti2018 = failure.ReportProjection(18).MTTISeconds(2018)
	}
	b.ReportMetric(r2, "fit-R2")
	b.ReportMetric(mtti2018/60, "2018-MTTI-min")
}

// BenchmarkFig5Utilization regenerates Figure 5: utilization projection
// and its sub-50% crossing year.
func BenchmarkFig5Utilization(b *testing.B) {
	var year int
	for i := 0; i < b.N; i++ {
		pts := failure.BalancedUtilization(failure.ReportProjection(18), 600, 600, 2008, 2020)
		year = failure.CrossingYear(pts, 0.5)
	}
	b.ReportMetric(float64(year), "50%-crossing-year")
}

// BenchmarkFig7GigaScaling regenerates Figure 7: GIGA+ create throughput
// per server count.
func BenchmarkFig7GigaScaling(b *testing.B) {
	for _, servers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := giga.DefaultConfig(servers)
				cfg.SplitThreshold = 200
				rate = giga.CreateStorm(cfg, 32, 20000).CreatesPerSecond
			}
			b.ReportMetric(rate, "creates/sec")
		})
	}
}

// BenchmarkFig8PLFSSpeedup regenerates Figure 8: PLFS vs direct N-1 on the
// three file system presets.
func BenchmarkFig8PLFSSpeedup(b *testing.B) {
	for _, cfg := range pfs.AllPresets(8) {
		b.Run(cfg.Name, func(b *testing.B) {
			var ratio, plfsBW float64
			for i := 0; i < b.N; i++ {
				_, viaPLFS, r := workload.Speedup(cfg, 32, 4<<20, 47008)
				ratio, plfsBW = r, viaPLFS.Bandwidth
			}
			b.ReportMetric(ratio, "speedup-x")
			b.ReportMetric(plfsBW/1e6, "plfs-MB/s")
		})
	}
}

// BenchmarkFig9Incast regenerates Figure 9: goodput at the collapse point
// with the default and fixed minimum RTO.
func BenchmarkFig9Incast(b *testing.B) {
	run := func(b *testing.B, minRTO float64) {
		var goodput float64
		for i := 0; i < b.N; i++ {
			p := incast.DefaultParams(32)
			p.SRUBytes = 64 << 10
			p.Rounds = 2
			p.MinRTO = sim.Time(minRTO)
			goodput = incast.Run(p).GoodputBps
		}
		b.ReportMetric(goodput*8/1e6, "Mbps")
	}
	b.Run("rto=200ms", func(b *testing.B) { run(b, 200e-3) })
	b.Run("rto=1ms", func(b *testing.B) { run(b, 1e-3) })
}

// BenchmarkFig10Argon regenerates Figure 10: insulation fractions and the
// co-scheduling advantage.
func BenchmarkFig10Argon(b *testing.B) {
	b.Run("insulation", func(b *testing.B) {
		var frac float64
		for i := 0; i < b.N; i++ {
			cfg := argon.DefaultConfig(1, argon.TimesliceCoSched)
			cfg.Duration = 5
			frac = argon.Measure(cfg).StreamFraction
		}
		b.ReportMetric(frac, "stream-frac")
	})
	b.Run("cosched-vs-unsync", func(b *testing.B) {
		var adv float64
		for i := 0; i < b.N; i++ {
			u := argon.DefaultConfig(8, argon.TimesliceUnsync)
			u.Duration = 5
			c := argon.DefaultConfig(8, argon.TimesliceCoSched)
			c.Duration = 5
			adv = argon.Run(c).StreamBps / argon.Run(u).StreamBps
		}
		b.ReportMetric(adv, "cosched-advantage-x")
	})
}

// BenchmarkFig11Flash regenerates Table 1 / Figure 11: per-device rates.
func BenchmarkFig11Flash(b *testing.B) {
	for _, spec := range flash.AllTable1Devices() {
		b.Run(spec.Name, func(b *testing.B) {
			var rd, wrFresh, wrSteady float64
			for i := 0; i < b.N; i++ {
				rd = flash.RandomReadRate(spec, 2000, 3)
				wrFresh = flash.FreshRandomWriteRate(spec, 5)
				wrSteady = flash.SteadyRandomWriteRate(spec, 5)
			}
			b.ReportMetric(rd, "rd-IOPS")
			b.ReportMetric(wrFresh, "wr-fresh-IOPS")
			b.ReportMetric(wrSteady, "wr-steady-IOPS")
		})
	}
}

// BenchmarkFig12CloudFS regenerates Figure 12: the four Hadoop stacks.
func BenchmarkFig12CloudFS(b *testing.B) {
	for _, mode := range []cloudfs.Mode{cloudfs.HDFSNative, cloudfs.PVFSNaive, cloudfs.PVFSReadahead, cloudfs.PVFSLayout} {
		b.Run(mode.String(), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				tput = cloudfs.Run(cloudfs.DefaultParams(16, 64), mode).Throughput
			}
			b.ReportMetric(tput/1e6, "scan-MB/s")
		})
	}
}

// BenchmarkFig13HDF5 regenerates Figure 13: the optimization stack.
func BenchmarkFig13HDF5(b *testing.B) {
	for _, code := range []hdf5sim.Code{hdf5sim.Chombo, hdf5sim.GCRM} {
		b.Run(code.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				rs := hdf5sim.RunStack(pfs.LustreLike(8), code, 32, 2<<20)
				speedup = rs[len(rs)-1].SpeedupVsBaseline
			}
			b.ReportMetric(speedup, "full-stack-x")
		})
	}
}

// BenchmarkFig14FlashDegradation regenerates Figure 14: the sustained
// random write cliff per device.
func BenchmarkFig14FlashDegradation(b *testing.B) {
	for _, spec := range []flash.Spec{flash.IntelX25M(), flash.RamSan20()} {
		b.Run(spec.Name, func(b *testing.B) {
			var deg float64
			for i := 0; i < b.N; i++ {
				res := flash.SustainedRandomWrite(spec, 1.0, 60, 1, 99)
				deg = res[0].IOPS / res[len(res)-1].IOPS
			}
			b.ReportMetric(deg, "degradation-x")
		})
	}
}

// BenchmarkTapeVerification regenerates the §5.2.3 media statistics.
func BenchmarkTapeVerification(b *testing.B) {
	var readable float64
	for i := 0; i < b.N; i++ {
		readable = tape.Campaign(tape.NERSCArchive(), 5, 42).ReadabilityFraction
	}
	b.ReportMetric(readable*100, "readable-%")
}

// BenchmarkPlacement regenerates the placement strategy comparison.
func BenchmarkPlacement(b *testing.B) {
	chunks := placement.CheckpointChunks(256, 64, 1<<20)
	for _, s := range []placement.Strategy{placement.RoundRobin{}, placement.FileOffsetStripe{}, placement.CRUSHLike{}} {
		b.Run(s.Name(), func(b *testing.B) {
			var moved float64
			for i := 0; i < b.N; i++ {
				moved = placement.MovedFraction(s, chunks, 8, 9, 1)
			}
			b.ReportMetric(moved, "moved-frac-on-growth")
		})
	}
}

// BenchmarkRestart measures PLFS read-back: uniform vs shifted restart
// (the PDSW'09 "...And eat it too" read-performance follow-on).
func BenchmarkRestart(b *testing.B) {
	spec := workload.Spec{
		Ranks: 16, BytesPerRank: 2 << 20, RecordSize: 47008,
		Pattern: workload.PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
	}
	for _, kind := range []workload.RestartKind{workload.UniformRestart, workload.ShiftedRestart} {
		b.Run(kind.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				bw = workload.RunRestart(pfs.PanFSLike(8), spec, kind).Bandwidth
			}
			b.ReportMetric(bw/1e6, "MB/s")
		})
	}
}

// BenchmarkMetadataSearch compares the Spyglass-style partitioned index
// against a flat database-style scan — the 10-1000x claim of §4.2.2.
func BenchmarkMetadataSearch(b *testing.B) {
	records := make([]mdindex.FileMeta, 0, 100000)
	for p := 0; p < 250; p++ {
		for f := 0; f < 400; f++ {
			ext := []string{".h5", ".nc", ".dat", ".txt"}[p%4]
			records = append(records, mdindex.FileMeta{
				Path:  fmt.Sprintf("/proj%03d/run%02d/f%05d%s", p, f%8, f, ext),
				Size:  int64((p*37 + f*13) % (1 << 24)),
				MTime: int64(p*1000 + f),
				Owner: uint32(p % 50),
				Ext:   ext,
			})
		}
	}
	owner := uint32(8)
	maxSize := int64(4096)
	q := mdindex.Query{Owner: &owner, Ext: ".h5", MaxSize: &maxSize}
	b.Run("flat-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(mdindex.FlatScan(records, q)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("partitioned-index", func(b *testing.B) {
		ix := mdindex.Build(records, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(ix.Search(q)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// BenchmarkAblationBurstBuffer sweeps the flash/disk bandwidth ratio of
// the burst-buffer tier and reports achievable utilization at a 2014-era
// MTTI.
func BenchmarkAblationBurstBuffer(b *testing.B) {
	mtti := failure.ReportProjection(18).MTTISeconds(2014)
	for _, ratio := range []float64{1, 4, 10} {
		b.Run(fmt.Sprintf("flash=%gx", ratio), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				bb := failure.BurstBuffer{CheckpointBytes: 600, FlashBandwidth: ratio, DiskBandwidth: 1}
				util, _ = failure.BurstBufferUtilization(bb, 600, mtti)
			}
			b.ReportMetric(util*100, "utilization-%")
		})
	}
}

// BenchmarkPNFS regenerates the pNFS-vs-NFS scaling comparison (s2.2).
func BenchmarkPNFS(b *testing.B) {
	for _, stack := range []pnfs.Stack{pnfs.PlainNFS, pnfs.PNFSFiles} {
		b.Run(stack.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				bw = pnfs.Run(pnfs.DefaultConfig(16, 8, stack)).AggregateBps
			}
			b.ReportMetric(bw/1e6, "MB/s")
		})
	}
}

// BenchmarkFSVA regenerates the virtual-appliance forwarding overheads
// (s4.2.1).
func BenchmarkFSVA(b *testing.B) {
	for _, tr := range []fsva.Transport{fsva.Native, fsva.SyncVMRPC, fsva.SharedMemRing} {
		b.Run(tr.String(), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = fsva.Run(fsva.DefaultConfig(tr)).OpsPerSecond
			}
			b.ReportMetric(ops/1e3, "kops/sec")
		})
	}
}

// BenchmarkGroupOpen regenerates the openg()/openfh() POSIX-extension
// open-storm comparison (s2.2).
func BenchmarkGroupOpen(b *testing.B) {
	for _, mode := range []posixext.OpenMode{posixext.PosixOpen, posixext.GroupOpen} {
		b.Run(mode.String(), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				ms = float64(posixext.RunOpen(posixext.DefaultOpenConfig(1024, mode)).Elapsed) * 1e3
			}
			b.ReportMetric(ms, "open-storm-ms")
		})
	}
}

// BenchmarkDiagnosis regenerates the §4.2.6 peer-comparison evaluation.
func BenchmarkDiagnosis(b *testing.B) {
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = diagnose.Evaluate(20, 30, 100, 5).TPRate
	}
	b.ReportMetric(tp*100, "true-positive-%")
}

// --- Ablations (DESIGN.md "Design choices to ablate") ---

// BenchmarkAblationIndexCoalescing compares per-write index records with
// write-time coalescing in the PLFS container library.
func BenchmarkAblationIndexCoalescing(b *testing.B) {
	for _, coalesce := range []bool{false, true} {
		b.Run(fmt.Sprintf("coalesce=%v", coalesce), func(b *testing.B) {
			var entries int64
			buf := make([]byte, 4096)
			for i := 0; i < b.N; i++ {
				backend := core.NewMemBackend()
				c, err := core.CreateContainer(backend, "/c", core.Options{NumHostdirs: 4, CoalesceIndex: coalesce})
				if err != nil {
					b.Fatal(err)
				}
				w, err := c.OpenWriter(0)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 512; k++ {
					if _, err := w.WriteAt(buf, int64(k)*4096); err != nil {
						b.Fatal(err)
					}
				}
				_, entries, _ = w.Stats()
				w.Close()
			}
			b.ReportMetric(float64(entries), "index-entries")
		})
	}
}

// BenchmarkAblationHostdirs measures PLFS container-setup cost with one
// hostdir (all per-rank logs created in a single hot directory, whose
// lock serializes the creates) versus spread hostdirs.
func BenchmarkAblationHostdirs(b *testing.B) {
	for _, hd := range []int{1, 32} {
		b.Run(fmt.Sprintf("hostdirs=%d", hd), func(b *testing.B) {
			var setup, total float64
			for i := 0; i < b.N; i++ {
				res := workload.Run(pfs.PanFSLike(8), workload.Spec{
					Ranks: 128, BytesPerRank: 256 << 10, RecordSize: 47008,
					Pattern: workload.PLFSPattern, PLFSHostdirs: hd, PLFSIndexFlushEvery: 64,
				})
				setup = float64(res.SetupElapsed)
				total = float64(res.SetupElapsed + res.Elapsed)
			}
			b.ReportMetric(setup*1e3, "setup-ms")
			b.ReportMetric(total*1e3, "total-ms")
		})
	}
}

// BenchmarkAblationGigaStaleMaps compares lazy stale client maps against
// synchronous invalidation.
func BenchmarkAblationGigaStaleMaps(b *testing.B) {
	for _, syncInval := range []bool{false, true} {
		b.Run(fmt.Sprintf("syncInvalidate=%v", syncInval), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg := giga.DefaultConfig(8)
				cfg.SplitThreshold = 100
				cfg.SyncInvalidate = syncInval
				rate = giga.CreateStorm(cfg, 16, 8000).CreatesPerSecond
			}
			b.ReportMetric(rate, "creates/sec")
		})
	}
}

// BenchmarkAblationRTOmin sweeps the minimum retransmission timeout.
func BenchmarkAblationRTOmin(b *testing.B) {
	for _, rto := range []float64{200e-3, 10e-3, 1e-3} {
		b.Run(fmt.Sprintf("rto=%.0fms", rto*1e3), func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				p := incast.DefaultParams(32)
				p.SRUBytes = 64 << 10
				p.Rounds = 2
				p.MinRTO = sim.Time(rto)
				goodput = incast.Run(p).GoodputBps
			}
			b.ReportMetric(goodput*8/1e6, "Mbps")
		})
	}
}

// BenchmarkAblationTimeslice sweeps the Argon slice length: too short
// approaches interleaving (guard band dominates), too long starves the
// other tenant's latency.
func BenchmarkAblationTimeslice(b *testing.B) {
	for _, slice := range []float64{10e-3, 100e-3, 500e-3} {
		b.Run(fmt.Sprintf("slice=%.0fms", slice*1e3), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				cfg := argon.DefaultConfig(1, argon.TimesliceCoSched)
				cfg.Slice = sim.Time(slice)
				cfg.Duration = 5
				frac = argon.Measure(cfg).StreamFraction
			}
			b.ReportMetric(frac, "stream-frac")
		})
	}
}

// BenchmarkAblationOverprovision sweeps flash spare area and reports the
// steady-state random write rate.
func BenchmarkAblationOverprovision(b *testing.B) {
	for _, spare := range []float64{0.07, 0.2, 0.45} {
		b.Run(fmt.Sprintf("spare=%.0f%%", spare*100), func(b *testing.B) {
			spec := flash.IntelX25M()
			spec.SpareFraction = spare
			var steady float64
			for i := 0; i < b.N; i++ {
				steady = flash.SteadyRandomWriteRate(spec, 5)
			}
			b.ReportMetric(steady, "steady-IOPS")
		})
	}
}

// BenchmarkAblationCompression sweeps on-the-fly checkpoint compression
// ratios (the PLFS follow-on) at a fixed 500 MB/s per-rank compressor.
func BenchmarkAblationCompression(b *testing.B) {
	for _, ratio := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("ratio=%gx", ratio), func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				spec := workload.Spec{
					Ranks: 32, BytesPerRank: 4 << 20, RecordSize: 47008,
					Pattern: workload.PLFSPattern, PLFSHostdirs: 32, PLFSIndexFlushEvery: 64,
				}
				if ratio > 1 {
					spec.CompressRatio = ratio
					spec.CompressBW = 500e6
				}
				elapsed = float64(workload.Run(pfs.PanFSLike(8), spec).Elapsed)
			}
			b.ReportMetric(elapsed*1e3, "ckpt-ms")
		})
	}
}
